//! Full-system Vivaldi simulation driver.
//!
//! Runs the paper's Vivaldi setup end to end: the synthetic topology,
//! 64-neighbor spring relaxation, Surveyors embedding exclusively among
//! themselves, EM calibration, the detection protocol in front of every
//! honest node, and the colluding-isolation adversary.
//!
//! ## The two-phase tick loop
//!
//! Each embedding *tick* (one neighbor slot of one pass) runs in two
//! phases:
//!
//! 1. **Snapshot** — every node's `(coordinate, local error)` is copied
//!    into reusable flat structure-of-arrays buffers
//!    ([`crate::snapshot::CoordSnapshot`]);
//! 2. **Update** — every node independently probes its slot peer,
//!    consults the adversary, and steps its own embedding against the
//!    snapshot. Nodes mutate only themselves, so this phase fans out
//!    over [`ices_par::par_map_mut`].
//!
//! Per-step probe nonces are derived from `(tick, node)` via
//! [`ices_stats::rng::derive2`] rather than drawn from a shared counter,
//! and the per-node effects (trace samples, confusion counts, neighbor
//! replacements) are merged *in node order* afterwards — so the result
//! is bit-for-bit identical at any worker count, including the
//! sequential `ICES_THREADS=1` path.

use crate::metrics::{AccuracyReport, DetectionReport};
use crate::obs::SimObs;
use crate::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use crate::snapshot::CoordSnapshot;
use crate::trace::TraceRing;
use ices_obs::Journal;
use ices_attack::defense::witness_votes_against;
use ices_attack::{Adversary, DefenseConfig};
use ices_coord::{Coordinate, Embedding, PeerSample};
use ices_core::{
    calibrate, vet_single, CalibrationOutcome, DetectorBank, EmConfig, SecureNode, SecureStep,
    SecurityConfig, StateSpaceParams, SurveyorInfo, SurveyorRegistry, VetEvent,
};
use ices_netsim::{EclipsePlan, FaultPlan, Network, ProbeOutcome};
use ices_stats::kmeans::kmeans;
use ices_stats::rng::{derive, derive2, SimRng};
use ices_stats::sample::sample_indices;
use ices_vivaldi::{select_neighbors, VivaldiConfig, VivaldiNode};
use rand::RngExt;
use std::collections::BTreeSet;
use ices_stats::streams;

/// How many random Surveyors a joining node probes before adopting the
/// closest one's filter (§4.2's join protocol).
const JOIN_PROBE_CANDIDATES: usize = 8;

/// Cap on the per-node trace length kept for calibration and replay.
const TRACE_CAP: usize = 8192;

/// Recent clean samples used to prime a freshly adopted filter.
const PRIME_SAMPLES: usize = 64;

/// Extra probe attempts after a lost/timed-out probe within one tick
/// (the bounded deterministic backoff: retries are immediate re-probes
/// under fresh nonces, capped per tick).
const PROBE_RETRIES: u32 = 2;

/// Consecutive failed ticks toward one neighbor before the node gives
/// up and evicts it as dead.
pub const DEAD_PEER_EVICT_FAILURES: u32 = 3;

/// Above this population size, neighbor selection samples a bounded
/// candidate pool per node instead of scanning all n−1 peers — the full
/// scan is O(n²) at construction, untenable at 50k+. Both paper-scale
/// populations (280, 1740) sit below the cap, so their candidate pools —
/// and every downstream fingerprint — are unchanged.
const NEIGHBOR_CANDIDATE_CAP: usize = 2048;

/// Distinct candidates sampled per node above the cap — comfortably more
/// than the paper's 64-neighbor budget needs for a healthy close/far mix.
const NEIGHBOR_CANDIDATE_SAMPLE: usize = 512;

enum Participant {
    /// No detection in front of the embedding (Surveyors, malicious
    /// nodes, and every node in detection-off baselines).
    Plain(VivaldiNode),
    /// Vetted by the detection protocol.
    Secured(Box<SecureNode<VivaldiNode>>),
}

impl Participant {
    fn coordinate(&self) -> &Coordinate {
        match self {
            Participant::Plain(n) => n.coordinate(),
            Participant::Secured(s) => s.inner().coordinate(),
        }
    }

    fn local_error(&self) -> f64 {
        match self {
            Participant::Plain(n) => n.local_error(),
            Participant::Secured(s) => s.inner().local_error(),
        }
    }
}

/// Why a probe produced no measurement (terminal, after retries).
#[derive(Clone, Copy)]
enum ProbeFate {
    Lost,
    TimedOut,
    PeerDown,
}

/// A secured node's detector work for this tick, deferred out of the
/// parallel update phase so the merge phase can classify the whole
/// snapshot of peer samples in one [`DetectorBank`] sweep. The sweep
/// replays the exact per-node f64 op order of the scalar
/// [`SecureNode::step`] / [`SecureNode::step_missing`] calls it
/// replaces, so every fingerprint and determinism suite is unchanged.
enum PendingVet {
    /// Run the innovation test on this sample (the scalar `step` path).
    Test {
        sample: PeerSample,
        label_malicious: bool,
    },
    /// Coast the detector: missing sample or defense rejection (the
    /// scalar `step_missing` path).
    Coast,
}

/// What one node's embedding step asks the driver to apply globally.
/// Collected from the parallel update phase and merged in node order.
#[derive(Default)]
struct StepEffect {
    /// Measured relative error to append to the node's trace.
    recorded: Option<f64>,
    /// `(label_malicious, flagged)` for the detection confusion matrix.
    vetted: Option<(bool, bool)>,
    /// The step hit the first-time-peer reprieve.
    reprieved: bool,
    /// The detection test rejected this peer; replace it.
    rejected_peer: Option<usize>,
    /// The node was crashed for this tick (churn) and did nothing.
    self_down: bool,
    /// The probe completed but needed at least one retry.
    retried: bool,
    /// The probe completed: clear the peer's consecutive-failure count.
    probe_ok_peer: Option<usize>,
    /// The probe failed after all retries: `(peer, terminal fate)`.
    failed_probe: Option<(usize, ProbeFate)>,
    /// A secured node absorbed the missing sample as a detector coast.
    coasted: bool,
    /// The adversary injected a tampered sample this step (ground
    /// truth, counted before any vetting).
    lied: bool,
    /// The intake clamp raised a tampered sample's deflated RTT.
    clamped_rtt: bool,
    /// Cross-verification witness probes this step issued.
    cross_checks: u64,
    /// The defense rejected the sample before the innovation test.
    defense_rejected: bool,
    /// Detector work this node deferred to the merge-phase batched
    /// sweep (`None` for plain nodes and idle slots).
    pending: Option<PendingVet>,
}

/// The Vivaldi system simulation.
pub struct VivaldiSimulation {
    config: ScenarioConfig,
    vivaldi: VivaldiConfig,
    security: SecurityConfig,
    network: Network,
    /// Ground-truth latent positions (for k-means Surveyor placement).
    latent: Vec<(f64, f64)>,
    surveyors: BTreeSet<usize>,
    malicious: BTreeSet<usize>,
    neighbors: Vec<Vec<usize>>,
    participants: Vec<Participant>,
    registry: SurveyorRegistry,
    traces: Vec<TraceRing>,
    /// Count of completed embedding ticks; each tick's probe nonces are
    /// derived from `(tick, node)`, independent of execution order.
    tick: u64,
    /// Metrics registry + optional run journal; the single source of
    /// truth the [`DetectionReport`] is derived from.
    obs: SimObs,
    rng: SimRng,
    /// Reusable SoA snapshot buffer for the tick loop's phase 1 — flat
    /// arrays refilled in place, so steady-state ticks allocate nothing
    /// to photograph the population.
    snapshot: CoordSnapshot,
    /// Per-node consecutive probe-failure counts toward each neighbor
    /// (fault mode only; empty maps on a clean network).
    probe_failures: Vec<std::collections::BTreeMap<usize, u32>>,
    /// Nodes whose [`VivaldiSimulation::arm_detection`] found no live
    /// Surveyor candidate (total outage); retried each tick.
    pending_arms: BTreeSet<usize>,
    /// Opt-in cross-verification defense; [`DefenseConfig::off`] (the
    /// paper's system) by default.
    defense: DefenseConfig,
    /// Registrar-poisoning plan; the empty plan steers nothing and
    /// keeps every draw bit-identical to an un-eclipsed run.
    eclipse: EclipsePlan,
    /// Monotone nonce for eclipse-steered replacement draws.
    replacement_draws: u64,
    /// Reusable SoA execution engine for the merge-phase detection
    /// sweep. Transient per tick: state is gathered from and scattered
    /// back to each node's scalar [`ices_core::Detector`], which stays
    /// the source of truth.
    bank: DetectorBank,
}

/// The probe nonce for `node`'s embedding step in tick `tick` — a pure
/// function of the pair, so concurrent workers need no shared counter.
fn step_nonce(tick: u64, node: usize) -> u64 {
    derive2(streams::STEP, tick, node as u64)
}

/// The probe nonce for retry `attempt` of `node`'s step in `tick`.
/// Attempt 0 is exactly [`step_nonce`] — the clean-network nonce — so an
/// empty fault plan reproduces seed behavior bit for bit; later attempts
/// draw from a disjoint retry stream.
fn retry_nonce(tick: u64, node: usize, attempt: u32) -> u64 {
    if attempt == 0 {
        step_nonce(tick, node)
    } else {
        derive2(derive(streams::RTRY, attempt as u64), tick, node as u64)
    }
}

impl VivaldiSimulation {
    /// Build the system: topology, Surveyor/malicious assignment, and
    /// neighbor sets. All nodes start at the origin, unconverged.
    ///
    /// # Panics
    /// Panics on invalid scenario configuration or if the Surveyor
    /// budget rounds to fewer than 2 nodes (Surveyors need each other).
    pub fn new(config: ScenarioConfig) -> Self {
        Self::with_vivaldi_config(config, VivaldiConfig::paper_default())
    }

    /// Like [`VivaldiSimulation::new`] with explicit Vivaldi parameters.
    pub fn with_vivaldi_config(config: ScenarioConfig, vivaldi: VivaldiConfig) -> Self {
        config.validate();
        vivaldi.validate();
        let seed = config.seed;
        let (network, latent) = match &config.topology {
            TopologyKind::King(kc) => {
                let mut topo = kc.generate(seed);
                let positions = std::mem::take(&mut topo.positions);
                (Network::from_king(topo, seed), positions)
            }
            TopologyKind::StreamedKing(kc) => {
                // Same King model, no O(n²) matrix: pairs are recomputed
                // on demand and the placement is the only per-node state.
                let synth = ices_netsim::SynthRtt::new(kc.clone(), seed);
                let positions = synth.placement().positions.clone();
                (Network::from_synth(synth, seed), positions)
            }
            TopologyKind::PlanetLab(pc) => {
                let mut pl = pc.generate(seed);
                let positions = std::mem::take(&mut pl.topology.positions);
                (Network::from_planetlab(pl, seed), positions)
            }
        };
        let n = network.len();
        let mut rng = SimRng::from_stream(seed, streams::VIVD,0); // "VIVD"

        // Surveyor deployment.
        let want = ((n as f64) * config.surveyors.fraction()).round().max(2.0) as usize;
        let surveyors: BTreeSet<usize> = match config.surveyors {
            SurveyorPlacement::Random { .. } => sample_indices(&mut rng, n, want.min(n))
                .into_iter()
                .collect(),
            SurveyorPlacement::KMeansHeads { .. } => {
                let points: Vec<Vec<f64>> = latent.iter().map(|&(x, y)| vec![x, y]).collect();
                let mut heads: BTreeSet<usize> = kmeans(&points, want.min(n), seed, 100)
                    .heads
                    .into_iter()
                    .collect();
                // Top up with random nodes if clusters shared heads.
                while heads.len() < want.min(n) {
                    heads.insert(rng.random_range(0..n));
                }
                heads
            }
        };
        assert!(
            surveyors.len() >= 2,
            "need at least 2 Surveyors so they can position each other"
        );

        // Malicious assignment among non-Surveyors.
        let civilians: Vec<usize> = (0..n).filter(|i| !surveyors.contains(i)).collect();
        let mal_count = ((n as f64) * config.malicious_fraction).round() as usize;
        let malicious: BTreeSet<usize> =
            sample_indices(&mut rng, civilians.len(), mal_count.min(civilians.len()))
                .into_iter()
                .map(|i| civilians[i])
                .collect();

        // Neighbor sets: Surveyors use each other exclusively; everyone
        // else draws the paper's 64-neighbor close/far mix from the whole
        // population — or, above [`NEIGHBOR_CANDIDATE_CAP`], from a
        // bounded per-node candidate sample so construction stays O(n)
        // per node instead of O(n²) total. Both paper-scale populations
        // sit below the cap, so their candidate pools are the full scan.
        let mut neighbors = Vec::with_capacity(n);
        for node in 0..n {
            let candidates: Vec<(usize, f64)> =
                if surveyors.contains(&node) || config.embed_against_surveyors_only {
                    surveyors
                        .iter()
                        .filter(|&&s| s != node)
                        .map(|&s| (s, network.base_rtt(node, s)))
                        .collect()
                } else if n - 1 <= NEIGHBOR_CANDIDATE_CAP {
                    (0..n)
                        .filter(|&p| p != node)
                        .map(|p| (p, network.base_rtt(node, p)))
                        .collect()
                } else {
                    // Distinct draws from a per-node stream: deterministic
                    // in (seed, node), independent of construction order.
                    let mut pool_rng = SimRng::from_stream(seed, streams::NCND, node as u64);
                    let mut pool = BTreeSet::new();
                    while pool.len() < NEIGHBOR_CANDIDATE_SAMPLE {
                        let p = pool_rng.random_range(0..n);
                        if p != node {
                            pool.insert(p);
                        }
                    }
                    pool.into_iter()
                        .map(|p| (p, network.base_rtt(node, p)))
                        .collect()
                };
            neighbors.push(select_neighbors(&candidates, &vivaldi, &mut rng));
        }

        let participants = (0..n)
            .map(|id| Participant::Plain(VivaldiNode::new(id, vivaldi, seed)))
            .collect();

        Self {
            security: SecurityConfig {
                alpha: config.alpha,
                ..SecurityConfig::paper_default()
            },
            config,
            vivaldi,
            network,
            latent,
            surveyors,
            malicious,
            neighbors,
            participants,
            registry: SurveyorRegistry::new(),
            traces: vec![TraceRing::with_capacity(TRACE_CAP); n],
            tick: 0,
            obs: SimObs::new(),
            rng,
            snapshot: CoordSnapshot::new(),
            probe_failures: vec![std::collections::BTreeMap::new(); n],
            pending_arms: BTreeSet::new(),
            defense: DefenseConfig::off(),
            eclipse: EclipsePlan::none(),
            replacement_draws: 0,
            bank: DetectorBank::new(),
        }
    }

    /// Arm (or disarm) the VerLoc-style cross-verification defense.
    /// Takes effect from the next tick; the off config is the paper's
    /// system.
    ///
    /// # Panics
    /// Panics on an invalid configuration (see
    /// [`DefenseConfig::validate`]).
    pub fn set_defense(&mut self, defense: DefenseConfig) {
        defense.validate();
        self.defense = defense;
    }

    /// Apply a registrar-poisoning plan: victims' current neighbor sets
    /// are re-steered toward attacker nodes immediately, and future
    /// replacement draws are steered with the plan's strength. Surveyor
    /// victims are ignored — their §3.3 isolation invariant (Surveyors
    /// embed only among themselves) outranks the poisoning model. The
    /// empty plan is a bit-identical no-op.
    pub fn set_eclipse(&mut self, plan: EclipsePlan) {
        for node in 0..self.len() {
            if self.surveyors.contains(&node) {
                continue;
            }
            plan.poison_neighbors(node, &mut self.neighbors[node]);
        }
        self.eclipse = plan;
    }

    /// Attach a fault plan to the underlying network. The default plan
    /// is empty; see [`ices_netsim::FaultPlan`].
    ///
    /// # Panics
    /// Panics if the plan is invalid.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.network.set_fault_plan(plan);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.participants.len()
    }

    /// Completed embedding ticks so far (adversaries that calibrate
    /// their behavior to elapsed time — e.g. slow drift — anchor on
    /// this).
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        self.participants.is_empty()
    }

    /// The simulated network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Surveyor node ids.
    pub fn surveyors(&self) -> &BTreeSet<usize> {
        &self.surveyors
    }

    /// Malicious node ids.
    pub fn malicious(&self) -> &BTreeSet<usize> {
        &self.malicious
    }

    /// Honest non-Surveyor node ids (the paper's "normal nodes").
    pub fn normal_nodes(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|i| !self.surveyors.contains(i) && !self.malicious.contains(i))
            .collect()
    }

    /// A node's current neighbor set.
    pub fn neighbors_of(&self, node: usize) -> &[usize] {
        &self.neighbors[node]
    }

    /// Latent ground-truth positions.
    pub fn latent_positions(&self) -> &[(f64, f64)] {
        &self.latent
    }

    /// Per-node traces of measured relative errors collected so far.
    /// Each [`TraceRing`] derefs to a contiguous `&[f64]`, oldest first.
    pub fn traces(&self) -> &[TraceRing] {
        &self.traces
    }

    /// Clear collected traces (e.g. between calibration and validation
    /// phases).
    pub fn clear_traces(&mut self) {
        for t in &mut self.traces {
            t.clear();
        }
    }

    /// The Surveyor registry (filled by
    /// [`VivaldiSimulation::calibrate_surveyors`]).
    pub fn registry(&self) -> &SurveyorRegistry {
        &self.registry
    }

    /// Detection metrics accumulated during attack phases, derived
    /// from the observability registry (the counters are the primary
    /// record; this assembles the serialized report shape from them).
    pub fn report(&self) -> DetectionReport {
        self.obs.detection_report()
    }

    /// Attach a run journal: every subsequent tick emits a counter
    /// delta line, and discrete events (evictions, rejections, filter
    /// refreshes, deferred arms) are recorded as they happen. Journal
    /// emission reads the same registry the report is derived from, so
    /// simulation outputs are bit-identical with or without one.
    pub fn enable_journal(&mut self, journal: Journal) {
        let (nodes, seed) = (self.len(), self.config.seed);
        self.obs.enable_journal(journal, "vivaldi", nodes, seed);
    }

    /// Emit the journal's `summary` line and detach it, returning the
    /// accumulated bytes for in-memory journals (`None` for file
    /// journals, whose bytes are flushed to disk).
    pub fn finish_journal(&mut self) -> Option<Vec<u8>> {
        self.obs.finish_journal()
    }

    /// Whether `node` is currently wrapped in the detection protocol.
    pub fn is_secured(&self, node: usize) -> bool {
        matches!(self.participants[node], Participant::Secured(_))
    }

    /// Nodes whose detection arming is still deferred (Surveyor outage
    /// at arm time and no live candidate since).
    pub fn pending_arms(&self) -> &BTreeSet<usize> {
        &self.pending_arms
    }

    /// A node's current coordinate.
    pub fn coordinate(&self, node: usize) -> &Coordinate {
        self.participants[node].coordinate()
    }

    /// A node's current local error.
    pub fn local_error(&self, node: usize) -> f64 {
        self.participants[node].local_error()
    }

    /// Reset every node's positioning state (the §3.2 "forget and
    /// rejoin" protocol). Traces, calibration, and Surveyor filters are
    /// kept.
    pub fn forget_coordinates(&mut self) {
        for p in &mut self.participants {
            match p {
                Participant::Plain(n) => n.reset(),
                Participant::Secured(s) => s.inner_mut().reset(),
            }
        }
    }

    /// One embedding tick: every node with a peer in this neighbor
    /// `slot` probes it and steps its own embedding, all against the
    /// same immutable snapshot of the population.
    ///
    /// Phase 1 snapshots `(coordinate, local error)` per node; phase 2
    /// fans the per-node work out over [`ices_par::par_map_mut`] (each
    /// node mutates only itself); phase 3 merges the returned
    /// [`StepEffect`]s in node order, applying trace appends, confusion
    /// counts and neighbor replacements. Probe nonces come from
    /// [`step_nonce`], so no phase depends on execution order and the
    /// tick is bit-for-bit reproducible at any worker count.
    fn tick(&mut self, slot: usize, adversary: &dyn Adversary, collect_traces: bool) {
        let tick = self.tick;
        self.tick += 1;
        self.obs.begin_tick(tick);
        // Nodes whose arming was deferred by a Surveyor outage retry
        // before the tick proper (no-op — and no RNG draw — unless a
        // deferral actually happened).
        self.retry_pending_arms();

        // SoA snapshot: flat buffers refilled in place — no per-node
        // allocation to photograph the population.
        {
            let snapshot = &mut self.snapshot;
            snapshot.fill(
                self.participants
                    .iter()
                    .map(|p| (p.coordinate(), p.local_error())),
            );
        }

        let network = &self.network;
        let neighbors = &self.neighbors;
        let snapshot = &self.snapshot;
        let faulty = !network.fault_plan().is_empty();
        let defense = self.defense;
        let population = self.participants.len();
        let effects = ices_par::par_map_mut(&mut self.participants, |node, participant| {
            let degree = neighbors[node].len();
            if degree == 0 || slot >= degree {
                return StepEffect::default();
            }
            let mut effect = StepEffect::default();
            if faulty && !network.node_up(node, tick) {
                // Crashed for this epoch: the node does nothing and
                // rejoins warm (coordinate intact) when the epoch turns.
                effect.self_down = true;
                return effect;
            }
            let peer = neighbors[node][slot];
            let rtt = if !faulty {
                network.measure_rtt_smoothed(node, peer, step_nonce(tick, node))
            } else {
                let mut measured = None;
                if !network.node_up(peer, tick) {
                    effect.failed_probe = Some((peer, ProbeFate::PeerDown));
                } else {
                    // Bounded deterministic backoff: immediate re-probes
                    // under fresh retry-stream nonces, capped per tick.
                    let mut fate = ProbeFate::Lost;
                    for attempt in 0..=PROBE_RETRIES {
                        match network.try_measure_rtt_smoothed(
                            node,
                            peer,
                            retry_nonce(tick, node, attempt),
                            tick,
                        ) {
                            ProbeOutcome::Ok(r) => {
                                measured = Some(r);
                                effect.retried = attempt > 0;
                                break;
                            }
                            ProbeOutcome::Lost => fate = ProbeFate::Lost,
                            ProbeOutcome::TimedOut => fate = ProbeFate::TimedOut,
                        }
                    }
                    match measured {
                        Some(_) => effect.probe_ok_peer = Some(peer),
                        None => effect.failed_probe = Some((peer, fate)),
                    }
                }
                match measured {
                    Some(r) => r,
                    None => {
                        // Missing sample: a secured node's detector
                        // coasts (time-update only) so its innovation
                        // statistics widen honestly; the embedding is
                        // untouched either way. The coast itself runs in
                        // the merge-phase batched sweep.
                        if let Participant::Secured(_) = participant {
                            effect.pending = Some(PendingVet::Coast);
                            effect.coasted = true;
                        }
                        return effect;
                    }
                }
            };
            // Materialize only the two coordinates this step touches;
            // the honest path then *moves* the peer coordinate into the
            // sample instead of cloning it a second time.
            let peer_coord = snapshot.coordinate(peer);
            let peer_error = snapshot.error(peer);
            let node_coord = snapshot.coordinate(node);

            let tampered =
                adversary.intercept(peer, node, tick, &peer_coord, peer_error, rtt, &node_coord);
            let label_malicious = tampered.is_some();
            let sample = match tampered {
                Some(mut t) => {
                    effect.lied = true;
                    // Intake invariant: an attacker can delay its probe
                    // reply but cannot make light travel faster, so a
                    // tampered RTT below the measured one is clamped
                    // back up (and counted) before anything consumes it.
                    if t.clamp_rtt(rtt) {
                        effect.clamped_rtt = true;
                    }
                    debug_assert!(
                        t.rtt_ms >= rtt,
                        "intake clamp must enforce rtt_ms >= measured rtt"
                    );
                    PeerSample {
                        peer,
                        peer_coord: t.coord,
                        peer_error: t.error,
                        rtt_ms: t.rtt_ms,
                    }
                }
                None => PeerSample {
                    peer,
                    peer_coord,
                    peer_error,
                    rtt_ms: rtt,
                },
            };

            // Opt-in cross-verification (the defense knob): before the
            // innovation test sees the sample, the victim cross-probes
            // the claimed coordinate through seeded witnesses and
            // rejects outright on quorum geometric inconsistency.
            // Layered on the detection protocol, so only secured nodes
            // run it; witness draws and probe nonces are pure functions
            // of (tick, node, peer, witness), preserving thread-count
            // invariance.
            if defense.enabled {
                if let Participant::Secured(_) = participant {
                    let witnesses = defense.draw_witnesses(tick, node, peer, population);
                    let mut against = 0usize;
                    for &w in &witnesses {
                        effect.cross_checks += 1;
                        // Colluding witnesses corroborate a colluding
                        // peer's story unconditionally.
                        if label_malicious && adversary.is_malicious(w) {
                            continue;
                        }
                        let w_rtt = network.measure_rtt_smoothed(
                            w,
                            peer,
                            derive2(derive(streams::XPRB, w as u64), tick, node as u64),
                        );
                        if witness_votes_against(
                            &sample.peer_coord,
                            &snapshot.coordinate(w),
                            w_rtt,
                            defense.tolerance,
                        ) {
                            against += 1;
                        }
                    }
                    if against >= defense.quorum {
                        // The detector never sees the sample: coast the
                        // filter honestly (in the merge-phase batched
                        // sweep) and swap the peer out.
                        effect.pending = Some(PendingVet::Coast);
                        effect.vetted = Some((label_malicious, true));
                        effect.rejected_peer = Some(peer);
                        effect.defense_rejected = true;
                        return effect;
                    }
                }
            }

            match participant {
                Participant::Plain(v) => {
                    let out = v.apply_step(&sample);
                    effect.recorded = Some(out.relative_error);
                }
                Participant::Secured(_) => {
                    // Defer the innovation test (and the apply-on-accept)
                    // to the merge phase, where the whole tick's samples
                    // are classified in one DetectorBank sweep. Nothing
                    // after this point in the closure reads the node's
                    // post-step state, so the move is order-preserving.
                    effect.pending = Some(PendingVet::Test {
                        sample,
                        label_malicious,
                    });
                }
            }
            effect
        });

        // Batched detection sweep: replay every deferred detector event
        // through one DetectorBank pass, bit-identical to the scalar
        // per-node calls it replaces (asserted by
        // `ices_core::protocol`'s equivalence suite). Results are
        // written back into each node's StepEffect before the ordinary
        // merge loop below consumes them.
        let mut effects = effects;
        {
            let mut vet_nodes = Vec::new();
            let mut events = Vec::new();
            let mut labels = Vec::new();
            for (node, effect) in effects.iter_mut().enumerate() {
                if let Some(pending) = effect.pending.take() {
                    vet_nodes.push(node);
                    match pending {
                        PendingVet::Test {
                            sample,
                            label_malicious,
                        } => {
                            labels.push(label_malicious);
                            events.push(VetEvent::Sample(sample));
                        }
                        PendingVet::Coast => {
                            // Placeholder label; a Missing event yields
                            // no step, so it is never read.
                            labels.push(false);
                            events.push(VetEvent::Missing);
                        }
                    }
                }
            }
            if !vet_nodes.is_empty() {
                let mut secured: Vec<&mut SecureNode<VivaldiNode>> =
                    ices_par::select_disjoint_mut(&mut self.participants, &vet_nodes)
                        .into_iter()
                        .map(|p| match p {
                            Participant::Secured(s) => &mut **s,
                            Participant::Plain(_) => {
                                panic!("only secured nodes defer detector work")
                            }
                        })
                        .collect();
                let steps = vet_single(&mut self.bank, &mut secured, &events);
                for (k, step) in steps.into_iter().enumerate() {
                    let Some(step) = step else { continue };
                    let effect = &mut effects[vet_nodes[k]];
                    effect.vetted = Some((labels[k], !step.accepted()));
                    match &step {
                        SecureStep::Accepted { outcome, .. } => {
                            effect.recorded = Some(outcome.relative_error);
                        }
                        SecureStep::Reprieved { .. } => {
                            effect.reprieved = true;
                        }
                        SecureStep::Rejected { .. } => {
                            if let VetEvent::Sample(sample) = &events[k] {
                                effect.rejected_peer = Some(sample.peer);
                            }
                        }
                    }
                }
            }
        }

        let journaled = self.obs.journal_enabled();
        for (node, effect) in effects.into_iter().enumerate() {
            if effect.vetted.is_some() || effect.recorded.is_some() {
                // A measurement arrived (vetted or plain) — the probe
                // completed, whatever the detector then decided.
                self.obs.probe_ok();
            }
            if let Some((label_malicious, flagged)) = effect.vetted {
                self.obs.record_confusion(label_malicious, flagged);
            }
            if effect.reprieved {
                self.obs.reprieve();
            }
            if let Some(d) = effect.recorded {
                if journaled {
                    self.obs.observe_relative_error(d);
                }
                if collect_traces {
                    self.traces[node].push(d);
                }
            }
            if effect.lied {
                self.obs.active_lies(1);
            }
            if effect.clamped_rtt {
                self.obs.clamped_rtts(1);
            }
            if effect.cross_checks > 0 {
                self.obs.cross_checks(effect.cross_checks);
            }
            if let Some(peer) = effect.rejected_peer {
                self.replace_neighbor(node, peer);
                self.obs.replacement(node, peer);
                if effect.defense_rejected {
                    self.obs.defense_rejection(node, peer);
                }
            }
            // Fault bookkeeping (all branches dead on a clean network).
            if effect.self_down {
                self.obs.node_down_tick();
            }
            if effect.retried {
                self.obs.retried_probes(1);
            }
            if effect.coasted {
                self.obs.coasted_steps(1);
            }
            if let Some(peer) = effect.probe_ok_peer {
                self.probe_failures[node].remove(&peer);
            }
            if let Some((peer, fate)) = effect.failed_probe {
                match fate {
                    ProbeFate::Lost => self.obs.lost_probe(),
                    ProbeFate::TimedOut => self.obs.timed_out_probe(),
                    ProbeFate::PeerDown => self.obs.peer_down_probe(),
                }
                let failures = self.probe_failures[node].entry(peer).or_insert(0);
                *failures += 1;
                if *failures >= DEAD_PEER_EVICT_FAILURES {
                    self.probe_failures[node].remove(&peer);
                    self.evict_dead_neighbor(node, peer);
                }
            }
        }
        // Slow-drift displacement gauge: a level, set only when the
        // adversary actually drifts so honest-run journals stay
        // byte-identical (unset gauges are NaN and never emitted).
        let drift = adversary.drift_accumulated_ms(tick);
        if drift > 0.0 {
            self.obs.set_drift_ms(drift);
        }
        if journaled {
            // Journal-only gauge: mean node-local embedding error. Only
            // computed when someone is listening.
            let n = self.participants.len().max(1) as f64;
            let sum: f64 = self.participants.iter().map(Participant::local_error).sum();
            self.obs.set_mean_local_error(sum / n);
        }
        self.obs.tick_boundary(tick);
    }

    /// Swap a rejected peer for a fresh random node (not self, not
    /// already a neighbor).
    fn replace_neighbor(&mut self, node: usize, rejected: usize) {
        let n = self.len();
        let current: BTreeSet<usize> = self.neighbors[node].iter().copied().collect();
        // Registrar poisoning: an eclipsed victim's replacement draw is
        // steered toward an attacker with the plan's strength. A
        // steered pick already in the set falls back to an honest draw
        // rather than duplicating a neighbor.
        if self.eclipse.is_victim(node) {
            self.replacement_draws += 1;
            if let Some(candidate) = self.eclipse.steer_replacement(node, self.replacement_draws) {
                if candidate != node && !current.contains(&candidate) {
                    if let Some(slot) = self.neighbors[node].iter_mut().find(|p| **p == rejected) {
                        *slot = candidate;
                    }
                    return;
                }
            }
        }
        for _ in 0..32 {
            let candidate = self.rng.random_range(0..n);
            if candidate != node && !current.contains(&candidate) {
                if let Some(slot) = self.neighbors[node].iter_mut().find(|p| **p == rejected) {
                    *slot = candidate;
                }
                return;
            }
        }
        // Population exhausted (tiny tests): keep the peer.
    }

    /// Evict a neighbor that failed [`DEAD_PEER_EVICT_FAILURES`]
    /// consecutive probes. Surveyors (and surveyor-only scenarios) must
    /// draw the replacement from the Surveyor pool to preserve the §3.3
    /// isolation invariant; everyone else uses the ordinary
    /// random-replacement path.
    fn evict_dead_neighbor(&mut self, node: usize, dead: usize) {
        self.obs.eviction(node);
        if !self.surveyors.contains(&node) && !self.config.embed_against_surveyors_only {
            self.replace_neighbor(node, dead);
            return;
        }
        let pool: Vec<usize> = self
            .surveyors
            .iter()
            .copied()
            .filter(|&s| s != node && !self.neighbors[node].contains(&s))
            .collect();
        if pool.is_empty() {
            return; // No fresh Surveyor available: keep the dead peer.
        }
        let candidate = pool[self.rng.random_range(0..pool.len())];
        if let Some(slot) = self.neighbors[node].iter_mut().find(|p| **p == dead) {
            *slot = candidate;
        }
    }

    /// Run `passes` full embedding passes (each node visits every one of
    /// its neighbors once per pass) with the adversary in the path. Each
    /// neighbor slot is one two-phase [`tick`](Self::tick); the worker
    /// count comes from `ICES_THREADS` / [`ices_par::max_threads`] and
    /// never changes the result.
    pub fn run(&mut self, passes: usize, adversary: &dyn Adversary, collect_traces: bool) {
        let start = self.tick;
        for _pass in 0..passes {
            let max_degree = self.neighbors.iter().map(|v| v.len()).max().unwrap_or(0);
            for slot in 0..max_degree {
                self.tick(slot, adversary, collect_traces);
            }
            // Round boundary: the half-rejected refresh rule.
            self.end_pass();
        }
        self.obs.phase("run", self.tick - start);
    }

    /// Run clean (attack-free) passes, collecting traces.
    pub fn run_clean(&mut self, passes: usize) {
        self.run(passes, &ices_attack::HonestWorld, true);
    }

    fn end_pass(&mut self) {
        // Refresh registry coordinates so closest-Surveyor lookups stay
        // current.
        let updates: Vec<SurveyorInfo> = self
            .registry
            .all()
            .iter()
            .map(|s| SurveyorInfo {
                id: s.id,
                coordinate: self.participants[s.id].coordinate().clone(),
                params: s.params,
            })
            .collect();
        for info in updates {
            self.registry.register(info);
        }
        // Per-node round action. Refreshes only consider Surveyors that
        // are up right now; with every Surveyor down the node keeps its
        // stale-but-bounded calibration until one rejoins. (On a clean
        // network `node_up` is always true, so this is exactly the
        // unconditional closest-Surveyor lookup.)
        let tick = self.tick;
        let network = &self.network;
        for node in 0..self.len() {
            let coord = self.participants[node].coordinate().clone();
            if let Participant::Secured(s) = &mut self.participants[node] {
                if s.end_round() == ices_core::protocol::RoundAction::RefreshFilter {
                    match self
                        .registry
                        .closest_available_by_coordinate(&coord, |info| {
                            network.node_up(info.id, tick)
                        }) {
                        Some(info) => {
                            let params = info.params;
                            let id = info.id;
                            s.refresh_filter(params, id);
                            self.obs.filter_refresh(node);
                        }
                        None => {
                            self.obs.stale_filter_fallback(node);
                        }
                    }
                }
            }
        }
    }

    /// EM-calibrate every Surveyor on its collected trace and publish
    /// the results in the registry.
    ///
    /// # Panics
    /// Panics if a Surveyor has fewer than 10 trace samples (run more
    /// clean passes first).
    pub fn calibrate_surveyors(&mut self, em: &EmConfig) {
        let ids: Vec<usize> = self.surveyors.iter().copied().collect();
        for id in ids {
            let outcome = calibrate(&self.traces[id], StateSpaceParams::em_initial_guess(), em);
            self.registry.register(SurveyorInfo {
                id,
                coordinate: self.participants[id].coordinate().clone(),
                params: outcome.params,
            });
        }
        self.obs.phase("calibrate", 0);
    }

    /// EM-calibrate *every* node on its own trace (the §3.2 validation
    /// needs per-node filters). Returns outcomes indexed by node.
    pub fn calibrate_all(&self, em: &EmConfig) -> Vec<CalibrationOutcome> {
        self.traces
            .iter()
            .map(|t| calibrate(t, StateSpaceParams::em_initial_guess(), em))
            .collect()
    }

    /// Arm the detection protocol on every honest non-Surveyor node:
    /// each probes a handful (8) of random Surveyors, adopts the
    /// closest one's filter (§4.2 join), and is wrapped in a
    /// [`SecureNode`]. No-op when the scenario disables detection.
    ///
    /// # Panics
    /// Panics if the registry is empty (calibrate Surveyors first).
    pub fn arm_detection(&mut self) {
        if !self.config.detection {
            return;
        }
        assert!(
            !self.registry.is_empty(),
            "calibrate Surveyors before arming detection"
        );
        for node in self.normal_nodes() {
            if !self.try_arm_node(node) {
                // Total Surveyor outage at arm time: defer this node's
                // arming to the next tick rather than indexing an empty
                // candidate draw.
                self.pending_arms.insert(node);
                self.obs.defer_arm(node);
            }
        }
        self.obs.phase("arm", 0);
    }

    /// Retry every deferred arm. Nodes that secure now count as late
    /// arms; the rest stay pending, each failed retry counting as
    /// another deferral. No-op (and no RNG draw) when nothing is
    /// pending, so runs without deferrals are bit-identical to the
    /// pre-deferral behavior.
    fn retry_pending_arms(&mut self) {
        if self.pending_arms.is_empty() {
            return;
        }
        let pending: Vec<usize> = self.pending_arms.iter().copied().collect();
        for node in pending {
            if self.try_arm_node(node) {
                self.pending_arms.remove(&node);
                self.obs.late_arm(node);
            } else {
                self.obs.defer_arm(node);
            }
        }
    }

    /// Arm one node: sample Surveyor candidates, probe them, adopt the
    /// closest live one's filter (§4.2 join), and wrap the node in a
    /// [`SecureNode`]. Returns `false` — deferring the arm — when the
    /// candidate draw has no live Surveyor at all (total outage).
    fn try_arm_node(&mut self, node: usize) -> bool {
        let faulty = !self.network.fault_plan().is_empty();
        let tick = self.tick;
        let mut candidates = self.registry.sample(JOIN_PROBE_CANDIDATES, &mut self.rng);
        // Registrar poisoning: an eclipsed victim is shown only the
        // honest share of Surveyor referrals (never zero — total
        // starvation would stall the join rather than subvert it).
        candidates.truncate(self.eclipse.surveyor_referrals(node, candidates.len()));
        if faulty {
            // Crashed Surveyors drop out of the candidate race before
            // anything is probed; on a clean network every node is up,
            // so this retain is a no-op and candidate indices (and
            // their join nonces) are unchanged from seed behavior.
            candidates.retain(|s| self.network.node_up(s.id, tick));
        }
        if candidates.is_empty() {
            return false;
        }
        let mut best: Option<(usize, f64)> = None;
        for (k, s) in candidates.iter().enumerate() {
            // Join probes draw nonces from their own stream, keyed by
            // (node, candidate index) — disjoint from the embedding
            // ticks' step nonces.
            let nonce = derive2(streams::JOIN, node as u64, k as u64);
            if !faulty {
                let rtt = self.network.measure_rtt_smoothed(node, s.id, nonce);
                if best.map(|(_, d)| rtt < d).unwrap_or(true) {
                    best = Some((k, rtt));
                }
            } else {
                match self.network.try_measure_rtt_smoothed(node, s.id, nonce, tick) {
                    ProbeOutcome::Ok(rtt) => {
                        if best.map(|(_, d)| rtt < d).unwrap_or(true) {
                            best = Some((k, rtt));
                        }
                    }
                    ProbeOutcome::Lost | ProbeOutcome::TimedOut => {}
                }
            }
        }
        // Every probe lost (heavy loss against live Surveyors): fall
        // back to the first live candidate rather than refusing to arm
        // — a stale choice beats no detector. The guard above makes the
        // index safe: `candidates` is non-empty here by construction.
        let chosen = best
            .map(|(k, _)| &candidates[k])
            // audit:allow(PANIC02): non-empty guard above (see comment)
            .unwrap_or_else(|| &candidates[0]);
        let source = chosen.id;
        let params = chosen.params;
        let placeholder = Participant::Plain(VivaldiNode::new(node, self.vivaldi, 0));
        let old = std::mem::replace(&mut self.participants[node], placeholder);
        let inner = match old {
            Participant::Plain(v) => v,
            Participant::Secured(s) => panic!(
                "node {} already secured (filter source {})",
                node,
                s.filter_source()
            ),
        };
        let mut secured = SecureNode::new(inner, params, source, self.security);
        // Prime the filter with the node's recent clean history so a
        // converged node is not mistaken for a freshly joining one.
        let trace = &self.traces[node];
        let tail = &trace[trace.len().saturating_sub(PRIME_SAMPLES)..];
        secured.prime(tail);
        self.participants[node] = Participant::Secured(Box::new(secured));
        true
    }

    /// Rewrite every registered Surveyor's filter parameters through a
    /// caller-supplied transformation (ablation support: white-model β,
    /// random-walk β, stale parameters, …). Call between
    /// [`VivaldiSimulation::calibrate_surveyors`] and
    /// [`VivaldiSimulation::arm_detection`].
    pub fn transform_registry_params(
        &mut self,
        transform: &mut dyn FnMut(StateSpaceParams) -> StateSpaceParams,
    ) {
        let updated: Vec<SurveyorInfo> = self
            .registry
            .all()
            .iter()
            .map(|info| SurveyorInfo {
                id: info.id,
                coordinate: info.coordinate.clone(),
                params: transform(info.params),
            })
            .collect();
        for info in updated {
            self.registry.register(info);
        }
    }

    /// Rotate the registered parameters among Surveyors so every lookup
    /// returns an *unrelated* Surveyor's filter (the "random Surveyor"
    /// ablation arm). No-op with fewer than 2 Surveyors.
    pub fn shuffle_registry_params(&mut self) {
        let infos: Vec<SurveyorInfo> = self.registry.all().to_vec();
        if infos.len() < 2 {
            return;
        }
        let shift = infos.len() / 2;
        for (i, info) in infos.iter().enumerate() {
            let donor = &infos[(i + shift) % infos.len()];
            self.registry.register(SurveyorInfo {
                id: info.id,
                coordinate: info.coordinate.clone(),
                params: donor.params,
            });
        }
    }

    /// Enable or disable the first-time-peer reprieve (ablation switch).
    /// Takes effect for nodes armed afterwards.
    pub fn set_reprieve_enabled(&mut self, enabled: bool) {
        self.security.reprieve_enabled = enabled;
    }

    /// Measure system accuracy: relative errors of coordinate-estimated
    /// RTTs against base RTTs over up to `pairs_per_node` random honest
    /// partners per honest normal node.
    pub fn accuracy_report(&mut self, pairs_per_node: usize) -> AccuracyReport {
        let nodes = self.normal_nodes();
        let mut all = Vec::new();
        let mut p95 = Vec::new();
        for &node in &nodes {
            let mut errors = Vec::with_capacity(pairs_per_node);
            for _ in 0..pairs_per_node {
                let other = nodes[self.rng.random_range(0..nodes.len())];
                if other == node {
                    continue;
                }
                let est = self.participants[node]
                    .coordinate()
                    .distance(self.participants[other].coordinate());
                let truth = self.network.base_rtt(node, other);
                errors.push((est - truth).abs() / truth);
            }
            if errors.is_empty() {
                continue;
            }
            all.extend_from_slice(&errors);
            p95.push(ices_stats::ecdf::percentile(&errors, 95.0));
        }
        AccuracyReport {
            relative_errors: all,
            p95_per_node: p95,
        }
    }

    /// Per-node 95th-percentile report restricted to an arbitrary subset
    /// (used by the Fig 4 representativeness comparison).
    pub fn p95_for_subset(&mut self, subset: &[usize], pairs_per_node: usize) -> Vec<f64> {
        let nodes = self.normal_nodes();
        let mut p95 = Vec::with_capacity(subset.len());
        for &node in subset {
            let mut errors = Vec::with_capacity(pairs_per_node);
            for _ in 0..pairs_per_node {
                let other = nodes[self.rng.random_range(0..nodes.len())];
                if other == node {
                    continue;
                }
                let est = self.participants[node]
                    .coordinate()
                    .distance(self.participants[other].coordinate());
                let truth = self.network.base_rtt(node, other);
                errors.push((est - truth).abs() / truth);
            }
            if !errors.is_empty() {
                p95.push(ices_stats::ecdf::percentile(&errors, 95.0));
            }
        }
        p95
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_attack::VivaldiIsolationAttack;

    fn scenario(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            topology: TopologyKind::small_king(50),
            surveyors: SurveyorPlacement::Random { fraction: 0.12 },
            malicious_fraction: 0.2,
            alpha: 0.05,
            detection: true,
            clean_cycles: 6,
            attack_cycles: 3,
            embed_against_surveyors_only: false,
        }
    }

    #[test]
    fn construction_partitions_population() {
        let sim = VivaldiSimulation::new(scenario(1));
        assert_eq!(sim.len(), 50);
        assert_eq!(sim.surveyors().len(), 6); // 12% of 50
        assert_eq!(sim.malicious().len(), 10); // 20% of 50
                                               // Disjoint partitions.
        for m in sim.malicious() {
            assert!(!sim.surveyors().contains(m));
        }
        assert_eq!(
            sim.normal_nodes().len(),
            50 - sim.surveyors().len() - sim.malicious().len()
        );
    }

    #[test]
    fn surveyors_only_neighbor_each_other() {
        let sim = VivaldiSimulation::new(scenario(2));
        for &s in sim.surveyors() {
            for &p in &sim.neighbors[s] {
                assert!(
                    sim.surveyors().contains(&p),
                    "surveyor {s} has non-surveyor neighbor {p}"
                );
            }
        }
    }

    #[test]
    fn clean_run_converges() {
        let mut sim = VivaldiSimulation::new(scenario(3));
        sim.run_clean(8);
        let report = sim.accuracy_report(20);
        assert!(
            report.median() < 0.25,
            "median accuracy after clean run: {}",
            report.median()
        );
        // Local errors should have dropped well below 1.
        let mean_el: f64 = sim
            .normal_nodes()
            .iter()
            .map(|&n| sim.local_error(n))
            .sum::<f64>()
            / sim.normal_nodes().len() as f64;
        assert!(mean_el < 0.35, "mean local error {mean_el}");
    }

    #[test]
    fn traces_are_collected_per_node() {
        let mut sim = VivaldiSimulation::new(scenario(4));
        sim.run_clean(2);
        for node in 0..sim.len() {
            let expected = sim.neighbors[node].len() * 2;
            assert_eq!(sim.traces()[node].len(), expected, "node {node}");
        }
        sim.clear_traces();
        assert!(sim.traces().iter().all(|t| t.is_empty()));
    }

    #[test]
    fn calibration_fills_registry() {
        let mut sim = VivaldiSimulation::new(scenario(5));
        sim.run_clean(4);
        sim.calibrate_surveyors(&EmConfig::default());
        assert_eq!(sim.registry().len(), sim.surveyors().len());
        for info in sim.registry().all() {
            info.params.validate();
        }
    }

    #[test]
    fn arm_detection_secures_normal_nodes_only() {
        let mut sim = VivaldiSimulation::new(scenario(6));
        sim.run_clean(4);
        sim.calibrate_surveyors(&EmConfig::default());
        sim.arm_detection();
        for node in 0..sim.len() {
            let secured = matches!(sim.participants[node], Participant::Secured(_));
            let should = !sim.surveyors().contains(&node) && !sim.malicious().contains(&node);
            assert_eq!(secured, should, "node {node}");
        }
    }

    #[test]
    fn attack_with_detection_yields_confusion_counts() {
        let mut sim = VivaldiSimulation::new(scenario(7));
        sim.run_clean(5);
        sim.calibrate_surveyors(&EmConfig::default());
        sim.arm_detection();
        let target = sim.normal_nodes()[0];
        let attack = VivaldiIsolationAttack::new(
            sim.malicious().iter().copied(),
            sim.coordinate(target).clone(),
            100.0,
            7,
        );
        sim.run(3, &attack, false);
        let c = &sim.report().confusion;
        assert!(c.positives() > 0, "attack steps should have been observed");
        assert!(c.negatives() > 0);
        assert!(
            c.tpr() > 0.5,
            "the blatant isolation attack should mostly be caught, tpr = {}",
            c.tpr()
        );
    }

    #[test]
    fn detection_off_scenario_keeps_everyone_plain() {
        let mut cfg = scenario(8);
        cfg.detection = false;
        let mut sim = VivaldiSimulation::new(cfg);
        sim.run_clean(3);
        sim.calibrate_surveyors(&EmConfig::default());
        sim.arm_detection(); // no-op
        assert!(sim
            .participants
            .iter()
            .all(|p| matches!(p, Participant::Plain(_))));
    }

    #[test]
    fn forget_coordinates_resets_positions() {
        let mut sim = VivaldiSimulation::new(scenario(9));
        sim.run_clean(3);
        let moved = ices_coord::vector::norm(sim.coordinate(0).position());
        assert!(moved > 0.0);
        sim.forget_coordinates();
        // Back to the bootstrap state: origin position, initial height.
        assert_eq!(sim.coordinate(0).position(), &[0.0, 0.0]);
        assert_eq!(
            sim.coordinate(0).magnitude(),
            ices_vivaldi::VivaldiConfig::paper_default().initial_height_ms
        );
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut sim = VivaldiSimulation::new(scenario(10));
            sim.run_clean(3);
            sim.accuracy_report(10).median()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let clean = || {
            let mut sim = VivaldiSimulation::new(scenario(12));
            sim.run_clean(3);
            sim.accuracy_report(10).median()
        };
        let explicit_empty = || {
            let mut sim = VivaldiSimulation::new(scenario(12));
            sim.set_fault_plan(FaultPlan::none());
            sim.run_clean(3);
            sim.accuracy_report(10).median()
        };
        assert_eq!(clean(), explicit_empty());
    }

    #[test]
    fn lossy_network_still_converges_and_counts_faults() {
        let mut sim = VivaldiSimulation::new(scenario(13));
        sim.set_fault_plan(FaultPlan::lossy(0.1, 0.05));
        sim.run_clean(8);
        let faults = &sim.report().faults;
        assert!(faults.retried_probes > 0, "retries should fire at 15% failure");
        assert!(
            faults.lost_probes + faults.timed_out_probes > 0,
            "some probes should fail terminally"
        );
        let report = sim.accuracy_report(20);
        assert!(
            report.median() < 0.3,
            "embedding should still converge under 15% probe failure, median {}",
            report.median()
        );
    }

    #[test]
    fn churn_crashes_nodes_and_coasts_detectors() {
        use ices_netsim::ChurnModel;
        let mut sim = VivaldiSimulation::new(scenario(14));
        sim.run_clean(5);
        sim.calibrate_surveyors(&EmConfig::default());
        sim.arm_detection();
        sim.set_fault_plan(
            FaultPlan::lossy(0.15, 0.05).with_churn(ChurnModel::new(16, 0.2)),
        );
        sim.run(3, &ices_attack::HonestWorld, false);
        let faults = &sim.report().faults;
        assert!(faults.node_down_ticks > 0, "churn should crash some nodes");
        assert!(faults.peer_down_probes > 0, "probes should hit crashed peers");
        assert!(
            faults.coasted_steps > 0,
            "secured nodes should coast over missing samples"
        );
    }

    #[test]
    fn dead_peers_are_evicted() {
        use ices_netsim::ChurnModel;
        // Small neighbor sets so the 50-node population leaves room for
        // replacements (the paper's 64-neighbor default saturates it).
        let vivaldi = VivaldiConfig {
            neighbors: 8,
            close_neighbors: 4,
            ..VivaldiConfig::paper_default()
        };
        let mut sim = VivaldiSimulation::with_vivaldi_config(scenario(15), vivaldi);
        // A node that is (almost) always down: every probe toward it
        // fails, so its neighbors evict it after the failure limit.
        let victim = sim.normal_nodes()[0];
        sim.set_fault_plan(
            FaultPlan::none().with_node_churn(victim, ChurnModel::new(u64::MAX, 0.999_999)),
        );
        sim.run_clean(6);
        let faults = &sim.report().faults;
        assert!(
            faults.evictions > 0,
            "a permanently dead node should get evicted by its neighbors"
        );
        assert!(
            !sim.normal_nodes()
                .iter()
                .filter(|&&n| n != victim)
                .any(|&n| sim.neighbors_of(n).contains(&victim)),
            "no live node should still neighbor the dead one after eviction"
        );
    }

    #[test]
    fn full_surveyor_outage_falls_back_to_stale_filters() {
        use ices_netsim::ChurnModel;
        let mut sim = VivaldiSimulation::new(scenario(16));
        sim.run_clean(5);
        sim.calibrate_surveyors(&EmConfig::default());
        sim.arm_detection();
        // Crash every Surveyor forever and make the network lossy enough
        // (~97% terminal failure per tick even after retries) that
        // detectors starve and ask for refreshes.
        let mut plan = FaultPlan::lossy(0.7, 0.29);
        let surveyor_ids: Vec<usize> = sim.surveyors().iter().copied().collect();
        for id in surveyor_ids {
            plan = plan.with_node_churn(id, ChurnModel::new(u64::MAX, 0.999_999));
        }
        sim.set_fault_plan(plan);
        sim.run(8, &ices_attack::HonestWorld, false);
        assert!(
            sim.report().faults.coasted_steps > 0,
            "nearly every secured step should coast under this plan"
        );
        assert!(
            sim.report().faults.stale_filter_fallbacks > 0,
            "with all Surveyors down, refresh requests must fall back to stale filters"
        );
    }

    #[test]
    fn kmeans_placement_produces_surveyors() {
        let mut cfg = scenario(11);
        cfg.surveyors = SurveyorPlacement::KMeansHeads { fraction: 0.1 };
        let sim = VivaldiSimulation::new(cfg);
        assert_eq!(sim.surveyors().len(), 5);
    }
}
