// Demo binary: panicking on an impossible state is the idiom here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ices_sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices_sim::NpsSimulation;

fn main() {
    let cfg = ScenarioConfig {
        seed: 2007,
        topology: TopologyKind::small_planetlab(280),
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction: 0.2,
        alpha: 0.05,
        detection: true,
        clean_cycles: 12,
        attack_cycles: 8,
        embed_against_surveyors_only: false,
    };
    let mut sim = NpsSimulation::new(cfg);
    for round in [4usize, 8, 12] {
        sim.run_clean(4);
        print!("after {round} rounds:");
        for layer in 0..4 {
            let members: Vec<usize> = (0..sim.len())
                .filter(|&i| sim.hierarchy().layer[i] == layer)
                .collect();
            let mut s = ices_stats::OnlineStats::new();
            for (k, &i) in members.iter().enumerate() {
                for &j in &members[k + 1..] {
                    let est = sim.coordinate(i).distance(sim.coordinate(j));
                    let rtt = sim.network().base_rtt(i, j);
                    s.push((est - rtt).abs() / rtt);
                }
            }
            print!("  L{layer} {:.3}", s.mean());
        }
        println!();
    }
    // Layer-3 excluding pathological-adjacent pairs.
    {
        let members: Vec<usize> = (0..sim.len())
            .filter(|&i| sim.hierarchy().layer[i] == 3)
            .collect();
        // Identify high-noise nodes by their profile-driven base RTT inflation:
        // just recompute the layer error excluding the worst 3 nodes by mean error.
        let mut per_node: Vec<(f64, usize)> = members
            .iter()
            .map(|&i| {
                let mut s = ices_stats::OnlineStats::new();
                for &j in &members {
                    if i != j {
                        let est = sim.coordinate(i).distance(sim.coordinate(j));
                        let rtt = sim.network().base_rtt(i, j);
                        s.push((est - rtt).abs() / rtt);
                    }
                }
                (s.mean(), i)
            })
            .collect();
        per_node.sort_by(|a, b| b.0.total_cmp(&a.0));
        println!(
            "worst L3 nodes: {:?}",
            &per_node[..5]
                .iter()
                .map(|(e, i)| (format!("{e:.2}"), *i))
                .collect::<Vec<_>>()
        );
        let keep: Vec<usize> = per_node[3..].iter().map(|&(_, i)| i).collect();
        let mut s = ices_stats::OnlineStats::new();
        for (k, &i) in keep.iter().enumerate() {
            for &j in &keep[k + 1..] {
                let est = sim.coordinate(i).distance(sim.coordinate(j));
                let rtt = sim.network().base_rtt(i, j);
                s.push((est - rtt).abs() / rtt);
            }
        }
        println!("L3 excluding worst 3: {:.3}", s.mean());
    }
    // D-trace tightness per layer: std of stationary window.
    for layer in 1..4 {
        let node = (0..sim.len())
            .find(|&i| sim.hierarchy().layer[i] == layer && !sim.surveyors().contains(&i))
            .unwrap();
        let t = &sim.traces()[node];
        let tail = &t[t.len() * 3 / 4..];
        let mut s = ices_stats::OnlineStats::new();
        for &d in tail {
            s.push(d);
        }
        println!(
            "layer {layer} node {node}: stationary D mean {:.3} sd {:.3}",
            s.mean(),
            s.std_dev()
        );
    }
    // Landmark comparison.
    let lm = sim.hierarchy().landmarks()[0];
    let t = &sim.traces()[lm];
    let tail = &t[t.len() * 3 / 4..];
    let mut s = ices_stats::OnlineStats::new();
    for &d in tail {
        s.push(d);
    }
    println!(
        "landmark {lm}: stationary D mean {:.3} sd {:.3}",
        s.mean(),
        s.std_dev()
    );
}
