//! Typed metrics registry: counters, gauges, and fixed-bucket
//! histograms keyed by `&'static str` names.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Instruments live in `Vec`s in registration
//!    order; iteration order is registration order, never hash order
//!    (DET01). Registration is a linear scan over a handful of static
//!    names — done once at simulation construction, not per tick.
//! 2. **Zero overhead when observation is off.** The hot-path cost of
//!    a counter bump is one `Vec` index + add through a pre-resolved
//!    [`CounterId`]. Snapshots and deltas are only computed when a
//!    journal asks for them.
//! 3. **No panics.** Ids are only handed out by this registry; an id
//!    from a different registry is a logic bug the accessors absorb by
//!    saturating to a dead instrument rather than indexing blindly.

/// Handle to a registered counter. `Copy` so call sites can keep it in
/// a plain struct field and bump without any lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A fixed-bucket histogram: counts per bucket plus running sum and
/// total, enough to derive means and coarse quantiles from a journal.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    name: &'static str,
    /// Upper bounds of each bucket (ascending); one overflow bucket
    /// past the last bound is implicit.
    bounds: &'static [f64],
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    fn new(name: &'static str, bounds: &'static [f64]) -> Self {
        Self {
            name,
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return; // non-finite samples carry no information to bucket
        }
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Instrument name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Bucket upper bounds (the final overflow bucket has no bound).
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket counts, `bounds().len() + 1` entries.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// Point-in-time copy of every counter, used to compute per-tick
/// deltas for the journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    counters: Vec<u64>,
}

/// The registry: owns every instrument, hands out `Copy` ids.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    histograms: Vec<Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or find) a counter by name and return its handle.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register (or find) a gauge by name and return its handle.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| *n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name, f64::NAN));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or find) a histogram by name with the given bucket
    /// bounds and return its handle. Bounds are taken from the first
    /// registration; re-registering with different bounds returns the
    /// existing instrument unchanged.
    pub fn histogram(&mut self, name: &'static str, bounds: &'static [f64]) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|h| h.name == name) {
            return HistogramId(i);
        }
        self.histograms.push(Histogram::new(name, bounds));
        HistogramId(self.histograms.len() - 1)
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if let Some((_, v)) = self.counters.get_mut(id.0) {
            *v += n;
        }
    }

    /// Current value of a counter (0 for a foreign id).
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters.get(id.0).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Set a gauge to `value`.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        if let Some((_, v)) = self.gauges.get_mut(id.0) {
            *v = value;
        }
    }

    /// Current value of a gauge (NaN until first set, or foreign id).
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges.get(id.0).map(|(_, v)| *v).unwrap_or(f64::NAN)
    }

    /// Record one observation into a histogram. Non-finite values are
    /// dropped.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        if let Some(h) = self.histograms.get_mut(id.0) {
            h.observe(value);
        }
    }

    /// Read a histogram (None for a foreign id).
    pub fn histogram_state(&self, id: HistogramId) -> Option<&Histogram> {
        self.histograms.get(id.0)
    }

    /// All counters in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().copied()
    }

    /// All gauges in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().copied()
    }

    /// Copy every counter value; pair with [`Registry::delta`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.iter().map(|(_, v)| *v).collect(),
        }
    }

    /// Counters that changed since `since`, as `(name, increase)` in
    /// registration order. Counters registered after the snapshot was
    /// taken report their full value.
    pub fn delta(&self, since: &Snapshot) -> Vec<(&'static str, u64)> {
        self.counters
            .iter()
            .enumerate()
            .filter_map(|(i, (name, v))| {
                let before = since.counters.get(i).copied().unwrap_or(0);
                let d = v.saturating_sub(before);
                (d > 0).then_some((*name, d))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_register_is_idempotent() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 2);
        assert_eq!(r.counter_value(a), 3);
    }

    #[test]
    fn delta_reports_only_changed_counters() {
        let mut r = Registry::new();
        let a = r.counter("a");
        let _b = r.counter("b");
        let snap = r.snapshot();
        r.add(a, 5);
        let c = r.counter("late");
        r.inc(c);
        assert_eq!(r.delta(&snap), vec![("a", 5), ("late", 1)]);
        let snap2 = r.snapshot();
        assert!(r.delta(&snap2).is_empty());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut r = Registry::new();
        let h = r.histogram("h", &[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 100.0, f64::NAN] {
            r.observe(h, v);
        }
        let state = r.histogram_state(h).unwrap();
        assert_eq!(state.counts(), &[2, 1, 1]);
        assert_eq!(state.count(), 4);
        assert!((state.sum() - 106.4).abs() < 1e-12);
    }

    #[test]
    fn gauge_defaults_nan_then_holds_value() {
        let mut r = Registry::new();
        let g = r.gauge("g");
        assert!(r.gauge_value(g).is_nan());
        r.set(g, 2.5);
        assert_eq!(r.gauge_value(g), 2.5);
    }
}
