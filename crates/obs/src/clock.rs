//! Time source abstraction for the observability layer.
//!
//! Everything in `ices-obs` is stamped with a `u64` "time" read from a
//! [`Clock`]. In the simulation that time is the **tick counter** — the
//! drivers advance a [`TickClock`] once per tick, so every journal
//! event and every snapshot delta is keyed to deterministic simulation
//! time and the DET02 invariant (no wall clock outside `crates/bench`)
//! holds for the whole subsystem. Benchmarks that want real elapsed
//! time implement `Clock` over `std::time::Instant` on their side of
//! the fence (see `ices_bench::WallClock`); this crate never touches
//! `std::time`.

/// A monotone source of `u64` timestamps.
///
/// Implementations must be cheap (`now` is called on every journal
/// event) and monotone non-decreasing. The unit is unspecified — the
/// simulation uses ticks, the bench-sanctioned impl uses milliseconds.
pub trait Clock {
    /// Current timestamp.
    fn now(&self) -> u64;
}

/// The simulation clock: a plain counter advanced explicitly by the
/// driver at each tick boundary. Reading it has no side effects and no
/// system dependence, so any two runs with the same tick schedule see
/// identical timestamps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickClock {
    tick: u64,
}

impl TickClock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        Self { tick: 0 }
    }

    /// Set the current tick. Drivers call this once per tick boundary;
    /// setting a lower value than the current one is allowed (e.g. a
    /// fresh run on a reused registry) but unusual.
    pub fn set(&mut self, tick: u64) {
        self.tick = tick;
    }

    /// Advance by one tick and return the new value.
    pub fn advance(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

impl Clock for TickClock {
    fn now(&self) -> u64 {
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_clock_reads_what_was_set() {
        let mut c = TickClock::new();
        assert_eq!(c.now(), 0);
        c.set(17);
        assert_eq!(c.now(), 17);
        assert_eq!(c.advance(), 18);
        assert_eq!(c.now(), 18);
    }
}
