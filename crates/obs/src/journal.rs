//! Buffered JSONL run journal.
//!
//! One JSON object per line, every line carrying a `"t"` timestamp read
//! from the caller's [`Clock`](crate::Clock) (simulation ticks in the
//! drivers) and an `"ev"` event tag. The encoder is hand-rolled into a
//! reused `String`, so steady-state emission allocates nothing, and the
//! writer is buffered, so a tick's worth of events is one memcpy.
//!
//! Failure policy: the journal **never panics and never fails the
//! run**. An I/O error flips a sticky `errored` flag (queryable, and
//! reported once on stderr) and further writes become no-ops —
//! observability must not take down the experiment it observes.
//!
//! Schema (version 1):
//!
//! ```text
//! {"t":0,"ev":"meta","v":1,"driver":"vivaldi","nodes":70,"seed":61}
//! {"t":3,"ev":"tick","d":{"probe.ok":120,"fault.lost_probes":4},"g":{"embed.mean_local_error":0.21}}
//! {"t":5,"ev":"phase","name":"clean","ticks":6}
//! {"t":7,"ev":"evict","node":12}
//! {"t":7,"ev":"reject","node":12,"peer":3}
//! {"t":9,"ev":"summary","c":{...all counters...},"g":{...}}
//! ```
//!
//! `"d"` maps counter names to their increase since the previous tick
//! line (zero deltas omitted); `"g"` maps gauge names to current
//! values (non-finite gauges omitted — JSON has no NaN).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Journal schema version stamped into the `meta` line.
pub const SCHEMA_VERSION: u64 = 1;

enum Sink {
    /// Bytes accumulate in memory; retrieved via [`Journal::finish`].
    Memory(Vec<u8>),
    /// Buffered file writer.
    File(BufWriter<File>),
}

/// A JSONL event stream. See the module docs for the schema.
pub struct Journal {
    sink: Sink,
    /// Reused per-line encode buffer.
    line: String,
    errored: bool,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field(
                "sink",
                &match self.sink {
                    Sink::Memory(ref b) => format!("memory({} bytes)", b.len()),
                    Sink::File(_) => "file".to_string(),
                },
            )
            .field("errored", &self.errored)
            .finish()
    }
}

/// Append `value` to `out` with JSON string escaping.
fn push_json_str(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` as a JSON number. Callers filter non-finite
/// values; this renders anything it is given via `{}` (shortest
/// round-trip form, always a valid JSON number for finite inputs).
fn push_f64(out: &mut String, value: f64) {
    use std::fmt::Write as _;
    let _ = write!(out, "{value}");
    // `{}` prints integral floats without a dot ("3"); that is still a
    // valid JSON number, so no fixup is needed.
}

impl Journal {
    /// Journal into an in-memory buffer (tests, invariance checks).
    pub fn in_memory() -> Self {
        Self {
            sink: Sink::Memory(Vec::new()),
            line: String::with_capacity(256),
            errored: false,
        }
    }

    /// Journal into a buffered file, truncating any existing content.
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            sink: Sink::File(BufWriter::new(file)),
            line: String::with_capacity(256),
            errored: false,
        })
    }

    /// Whether a write has failed; once true the journal is inert.
    pub fn errored(&self) -> bool {
        self.errored
    }

    fn write_line(&mut self) {
        self.line.push('\n');
        if self.errored {
            return;
        }
        let result = match &mut self.sink {
            Sink::Memory(buf) => {
                buf.extend_from_slice(self.line.as_bytes());
                Ok(())
            }
            Sink::File(w) => w.write_all(self.line.as_bytes()),
        };
        if let Err(e) = result {
            self.errored = true;
            eprintln!("ices-obs: journal write failed, journaling disabled: {e}");
        }
    }

    /// `meta` line: run identity, stamped first.
    pub fn meta(&mut self, t: u64, driver: &str, nodes: usize, seed: u64) {
        self.line.clear();
        use std::fmt::Write as _;
        let _ = write!(self.line, "{{\"t\":{t},\"ev\":\"meta\",\"v\":{SCHEMA_VERSION},\"driver\":");
        push_json_str(&mut self.line, driver);
        let _ = write!(self.line, ",\"nodes\":{nodes},\"seed\":{seed}}}");
        self.write_line();
    }

    /// `tick` line: counter deltas since the previous tick line plus
    /// current finite gauge values. Emitted even when both maps are
    /// empty so the time axis has no holes.
    pub fn tick(&mut self, t: u64, deltas: &[(&'static str, u64)], gauges: &[(&'static str, f64)]) {
        self.line.clear();
        use std::fmt::Write as _;
        let _ = write!(self.line, "{{\"t\":{t},\"ev\":\"tick\",\"d\":{{");
        for (i, (name, d)) in deltas.iter().enumerate() {
            if i > 0 {
                self.line.push(',');
            }
            push_json_str(&mut self.line, name);
            let _ = write!(self.line, ":{d}");
        }
        self.line.push_str("},\"g\":{");
        let mut first = true;
        for (name, v) in gauges {
            if !v.is_finite() {
                continue;
            }
            if !first {
                self.line.push(',');
            }
            first = false;
            push_json_str(&mut self.line, name);
            self.line.push(':');
            push_f64(&mut self.line, *v);
        }
        self.line.push_str("}}");
        self.write_line();
    }

    /// `tier` line: the numeric tier this run resolved (`"fast"` for
    /// `ICES_FAST=1`). Emitted right after `meta` and **only** for
    /// non-default tiers, so exact-tier journals stay byte-identical to
    /// runs recorded before the tier existed.
    pub fn tier(&mut self, t: u64, name: &str) {
        self.line.clear();
        use std::fmt::Write as _;
        let _ = write!(self.line, "{{\"t\":{t},\"ev\":\"tier\",\"name\":");
        push_json_str(&mut self.line, name);
        self.line.push('}');
        self.write_line();
    }

    /// `phase` line: a named span of `ticks` ticks ending at `t`.
    pub fn phase(&mut self, t: u64, name: &str, ticks: u64) {
        self.line.clear();
        use std::fmt::Write as _;
        let _ = write!(self.line, "{{\"t\":{t},\"ev\":\"phase\",\"name\":");
        push_json_str(&mut self.line, name);
        let _ = write!(self.line, ",\"ticks\":{ticks}}}");
        self.write_line();
    }

    /// Discrete per-node event (`evict`, `refresh`, `stale_fallback`,
    /// `defer_arm`, `arm`, ...).
    pub fn node_event(&mut self, t: u64, ev: &str, node: usize) {
        self.line.clear();
        use std::fmt::Write as _;
        let _ = write!(self.line, "{{\"t\":{t},\"ev\":");
        push_json_str(&mut self.line, ev);
        let _ = write!(self.line, ",\"node\":{node}}}");
        self.write_line();
    }

    /// Discrete per-edge event (`reject`: observer flags a peer;
    /// `defense_reject`: cross-verification witnesses vote a peer out).
    pub fn pair_event(&mut self, t: u64, ev: &str, node: usize, peer: usize) {
        self.line.clear();
        use std::fmt::Write as _;
        let _ = write!(self.line, "{{\"t\":{t},\"ev\":");
        push_json_str(&mut self.line, ev);
        let _ = write!(self.line, ",\"node\":{node},\"peer\":{peer}}}");
        self.write_line();
    }

    /// `summary` line: every counter's final value and every finite
    /// gauge, closing the journal's data section.
    pub fn summary(
        &mut self,
        t: u64,
        counters: &[(&'static str, u64)],
        gauges: &[(&'static str, f64)],
    ) {
        self.line.clear();
        use std::fmt::Write as _;
        let _ = write!(self.line, "{{\"t\":{t},\"ev\":\"summary\",\"c\":{{");
        for (i, (name, v)) in counters.iter().enumerate() {
            if i > 0 {
                self.line.push(',');
            }
            push_json_str(&mut self.line, name);
            let _ = write!(self.line, ":{v}");
        }
        self.line.push_str("},\"g\":{");
        let mut first = true;
        for (name, v) in gauges {
            if !v.is_finite() {
                continue;
            }
            if !first {
                self.line.push(',');
            }
            first = false;
            push_json_str(&mut self.line, name);
            self.line.push(':');
            push_f64(&mut self.line, *v);
        }
        self.line.push_str("}}");
        self.write_line();
    }

    /// Push buffered lines to the file now, without closing the
    /// journal. The daemon calls this on its shutdown path (and
    /// periodically between poll cycles) so an abort — `SIGKILL`,
    /// `process::exit`, a panic with destructors skipped — loses at
    /// most the lines written since the last flush, never a torn one.
    /// A no-op for in-memory journals and after a write error.
    pub fn flush(&mut self) {
        if self.errored {
            return;
        }
        if let Sink::File(w) = &mut self.sink {
            if let Err(e) = w.flush() {
                self.errored = true;
                eprintln!("ices-obs: journal flush failed, journaling disabled: {e}");
            }
        }
    }

    /// Flush and close. Returns the accumulated bytes for an in-memory
    /// journal, `None` for a file journal (whose bytes are on disk).
    pub fn finish(mut self) -> Option<Vec<u8>> {
        match &mut self.sink {
            Sink::Memory(buf) => Some(std::mem::take(buf)),
            Sink::File(w) => {
                if let Err(e) = w.flush() {
                    if !self.errored {
                        eprintln!("ices-obs: journal flush failed: {e}");
                    }
                    self.errored = true;
                }
                None
            }
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Best-effort flush for file journals dropped without finish().
        if let Sink::File(w) = &mut self.sink {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(journal: Journal) -> Vec<String> {
        let bytes = journal.finish().unwrap_or_default();
        String::from_utf8(bytes)
            .unwrap_or_default()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn emits_one_valid_json_object_per_line() {
        let mut j = Journal::in_memory();
        j.meta(0, "vivaldi", 70, 61);
        j.tick(1, &[("probe.ok", 3)], &[("err", 0.5), ("nan", f64::NAN)]);
        j.phase(6, "clean", 6);
        j.node_event(7, "evict", 12);
        j.pair_event(7, "reject", 12, 3);
        j.summary(9, &[("probe.ok", 3)], &[]);
        let lines = lines(j);
        assert_eq!(lines.len(), 6);
        for line in &lines {
            let _: serde::Value =
                serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e:?}"));
        }
        assert!(lines[1].contains("\"probe.ok\":3"));
        assert!(!lines[1].contains("nan"), "non-finite gauges must be omitted");
    }

    #[test]
    fn escapes_strings() {
        let mut j = Journal::in_memory();
        j.phase(0, "we\"ird\nname", 1);
        let lines = lines(j);
        assert_eq!(lines.len(), 1);
        let v = serde_json::from_str(&lines[0]).unwrap_or_else(|e| panic!("{e:?}"));
        let name = match &v {
            serde::Value::Map(m) => m.iter().find(|(k, _)| k == "name").map(|(_, v)| v.clone()),
            _ => None,
        };
        assert_eq!(name, Some(serde::Value::Str("we\"ird\nname".to_string())));
    }

    #[test]
    fn empty_tick_line_still_emitted() {
        let mut j = Journal::in_memory();
        j.tick(4, &[], &[]);
        let lines = lines(j);
        assert_eq!(lines, vec!["{\"t\":4,\"ev\":\"tick\",\"d\":{},\"g\":{}}"]);
    }
}
