//! Journal parsing, schema validation, and time-series derivation —
//! shared by the `obs_report` binary and the tier-2 schema check.
//!
//! [`parse`] is strict: every departure from the schema in
//! [`crate::journal`]'s docs (unknown event tag, missing field,
//! non-monotone timestamps, wrong schema version) is collected as an
//! error string with its line number. [`series`] turns the tick rows
//! into the paper's per-tick detector quality trajectory: FPR, TPR
//! (both per-tick and cumulative) and the coast rate — the fraction of
//! embedding steps that had to coast on a missing sample.

use crate::names;
use serde::Value;

/// The `meta` header line.
#[derive(Debug, Clone, PartialEq)]
pub struct Meta {
    pub version: u64,
    pub driver: String,
    pub nodes: u64,
    pub seed: u64,
}

/// One `tick` line: counter deltas and gauge values at tick `t`.
#[derive(Debug, Clone, PartialEq)]
pub struct TickRow {
    pub t: u64,
    pub deltas: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
}

impl TickRow {
    /// Delta of one named counter this tick (0 when absent).
    pub fn delta(&self, name: &str) -> u64 {
        self.deltas
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// One `phase` line: the span `name` covered `ticks` ticks ending at `t`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    pub t: u64,
    pub name: String,
    pub ticks: u64,
}

/// A parsed journal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunJournal {
    pub meta: Option<Meta>,
    /// Numeric tier the run declared (`"fast"`); `None` is the exact
    /// tier — the line is only emitted for non-default tiers.
    pub tier: Option<String>,
    pub ticks: Vec<TickRow>,
    pub phases: Vec<PhaseRow>,
    /// Discrete events tallied by tag (`evict`, `reject`, ...).
    pub event_counts: Vec<(String, u64)>,
    /// Final counter values from the `summary` line, if present.
    pub summary_counters: Vec<(String, u64)>,
}

impl RunJournal {
    /// Total count of one discrete event tag.
    pub fn event_count(&self, ev: &str) -> u64 {
        self.event_counts
            .iter()
            .find(|(n, _)| n == ev)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

fn field<'a>(map: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Parse and validate a journal. Returns the parsed journal even when
/// errors were found, so callers can render a best-effort report while
/// failing a strict check; `errors` is empty iff the journal conforms
/// to schema version 1.
pub fn parse(text: &str) -> (RunJournal, Vec<String>) {
    let mut run = RunJournal::default();
    let mut errors = Vec::new();
    let mut last_t: Option<u64> = None;
    let mut saw_data_line = false;

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("line {lineno}: invalid JSON: {e:?}"));
                continue;
            }
        };
        let map = match &value {
            Value::Map(m) => m.as_slice(),
            _ => {
                errors.push(format!("line {lineno}: not a JSON object"));
                continue;
            }
        };
        let Some(t) = field(map, "t").and_then(as_u64) else {
            errors.push(format!("line {lineno}: missing non-negative integer \"t\""));
            continue;
        };
        let Some(ev) = field(map, "ev").and_then(as_str) else {
            errors.push(format!("line {lineno}: missing string \"ev\""));
            continue;
        };
        if let Some(prev) = last_t {
            if t < prev {
                errors.push(format!(
                    "line {lineno}: timestamp {t} goes backwards (previous {prev})"
                ));
            }
        }
        last_t = Some(t);

        match ev {
            "meta" => {
                if saw_data_line || run.meta.is_some() {
                    errors.push(format!("line {lineno}: duplicate or late \"meta\" line"));
                }
                let version = field(map, "v").and_then(as_u64).unwrap_or(0);
                if version != crate::SCHEMA_VERSION {
                    errors.push(format!(
                        "line {lineno}: schema version {version}, expected {}",
                        crate::SCHEMA_VERSION
                    ));
                }
                let driver = field(map, "driver").and_then(as_str).map(str::to_string);
                let nodes = field(map, "nodes").and_then(as_u64);
                let seed = field(map, "seed").and_then(as_u64);
                match (driver, nodes, seed) {
                    (Some(driver), Some(nodes), Some(seed)) => {
                        run.meta = Some(Meta {
                            version,
                            driver,
                            nodes,
                            seed,
                        });
                    }
                    _ => errors.push(format!(
                        "line {lineno}: \"meta\" needs string \"driver\" and integer \
                         \"nodes\"/\"seed\""
                    )),
                }
            }
            "tick" => {
                saw_data_line = true;
                let mut row = TickRow {
                    t,
                    deltas: Vec::new(),
                    gauges: Vec::new(),
                };
                match field(map, "d") {
                    Some(Value::Map(d)) => {
                        for (name, v) in d {
                            match as_u64(v) {
                                Some(n) => row.deltas.push((name.clone(), n)),
                                None => errors.push(format!(
                                    "line {lineno}: delta {name:?} is not a non-negative integer"
                                )),
                            }
                        }
                    }
                    _ => errors.push(format!("line {lineno}: \"tick\" needs object \"d\"")),
                }
                match field(map, "g") {
                    Some(Value::Map(g)) => {
                        for (name, v) in g {
                            match as_f64(v) {
                                Some(x) => row.gauges.push((name.clone(), x)),
                                None => errors.push(format!(
                                    "line {lineno}: gauge {name:?} is not a number"
                                )),
                            }
                        }
                    }
                    _ => errors.push(format!("line {lineno}: \"tick\" needs object \"g\"")),
                }
                run.ticks.push(row);
            }
            "tier" => {
                if saw_data_line || run.tier.is_some() {
                    errors.push(format!("line {lineno}: duplicate or late \"tier\" line"));
                }
                match field(map, "name").and_then(as_str) {
                    Some(name) => run.tier = Some(name.to_string()),
                    None => {
                        errors.push(format!("line {lineno}: \"tier\" needs string \"name\""))
                    }
                }
            }
            "phase" => {
                saw_data_line = true;
                let name = field(map, "name").and_then(as_str).map(str::to_string);
                let ticks = field(map, "ticks").and_then(as_u64);
                match (name, ticks) {
                    (Some(name), Some(ticks)) => run.phases.push(PhaseRow { t, name, ticks }),
                    _ => errors.push(format!(
                        "line {lineno}: \"phase\" needs string \"name\" and integer \"ticks\""
                    )),
                }
            }
            "summary" => {
                saw_data_line = true;
                match field(map, "c") {
                    Some(Value::Map(c)) => {
                        for (name, v) in c {
                            match as_u64(v) {
                                Some(n) => run.summary_counters.push((name.clone(), n)),
                                None => errors.push(format!(
                                    "line {lineno}: summary counter {name:?} is not an integer"
                                )),
                            }
                        }
                    }
                    _ => errors.push(format!("line {lineno}: \"summary\" needs object \"c\"")),
                }
            }
            "evict" | "refresh" | "stale_fallback" | "defer_arm" | "arm" => {
                saw_data_line = true;
                if field(map, "node").and_then(as_u64).is_none() {
                    errors.push(format!("line {lineno}: \"{ev}\" needs integer \"node\""));
                }
                bump(&mut run.event_counts, ev);
            }
            "reject" | "defense_reject" => {
                saw_data_line = true;
                if field(map, "node").and_then(as_u64).is_none()
                    || field(map, "peer").and_then(as_u64).is_none()
                {
                    errors.push(format!(
                        "line {lineno}: \"{ev}\" needs integer \"node\" and \"peer\""
                    ));
                }
                bump(&mut run.event_counts, ev);
            }
            other => {
                errors.push(format!("line {lineno}: unknown event tag {other:?}"));
            }
        }
    }

    if run.meta.is_none() {
        errors.push("journal has no \"meta\" line".to_string());
    }
    (run, errors)
}

fn bump(counts: &mut Vec<(String, u64)>, ev: &str) {
    if let Some((_, n)) = counts.iter_mut().find(|(name, _)| name == ev) {
        *n += 1;
    } else {
        counts.push((ev.to_string(), 1));
    }
}

/// One point of the derived detector-quality trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    pub t: u64,
    /// Per-tick false-positive rate `fp / (fp + tn)`; `None` when no
    /// honest verdicts landed this tick.
    pub fpr: Option<f64>,
    /// Per-tick true-positive rate `tp / (tp + fn)`; `None` when no
    /// malicious verdicts landed this tick.
    pub tpr: Option<f64>,
    /// Fraction of embedding steps that coasted on a missing sample:
    /// `coasted / (coasted + probe.ok)`; `None` on an idle tick.
    pub coast_rate: Option<f64>,
    /// Cumulative FPR over all ticks up to and including this one.
    pub cum_fpr: Option<f64>,
    /// Cumulative TPR over all ticks up to and including this one.
    pub cum_tpr: Option<f64>,
}

fn rate(num: u64, den: u64) -> Option<f64> {
    (den > 0).then(|| num as f64 / den as f64)
}

/// Derive the per-tick FPR/TPR/coast-rate series from a journal's tick
/// rows (deltas are per-tick already; cumulative columns re-integrate).
pub fn series(run: &RunJournal) -> Vec<SeriesPoint> {
    let (mut tp, mut fp, mut tn, mut fn_) = (0u64, 0u64, 0u64, 0u64);
    run.ticks
        .iter()
        .map(|row| {
            let (dtp, dfp) = (row.delta(names::DETECT_TP), row.delta(names::DETECT_FP));
            let (dtn, dfn) = (row.delta(names::DETECT_TN), row.delta(names::DETECT_FN));
            let coasted = row.delta(names::COASTED_STEPS);
            let ok = row.delta(names::PROBE_OK);
            tp += dtp;
            fp += dfp;
            tn += dtn;
            fn_ += dfn;
            SeriesPoint {
                t: row.t,
                fpr: rate(dfp, dfp + dtn),
                tpr: rate(dtp, dtp + dfn),
                coast_rate: rate(coasted, coasted + ok),
                cum_fpr: rate(fp, fp + tn),
                cum_tpr: rate(tp, tp + fn_),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"t\":0,\"ev\":\"meta\",\"v\":1,\"driver\":\"vivaldi\",\"nodes\":70,\"seed\":61}\n",
        "{\"t\":1,\"ev\":\"tick\",\"d\":{\"probe.ok\":8,\"fault.coasted_steps\":2},\"g\":{}}\n",
        "{\"t\":2,\"ev\":\"tick\",\"d\":{\"detect.fp\":1,\"detect.tn\":9,\"detect.tp\":3,\
         \"detect.fn\":1},\"g\":{\"embed.mean_local_error\":0.25}}\n",
        "{\"t\":2,\"ev\":\"reject\",\"node\":4,\"peer\":9}\n",
        "{\"t\":2,\"ev\":\"phase\",\"name\":\"attack\",\"ticks\":2}\n",
        "{\"t\":2,\"ev\":\"summary\",\"c\":{\"probe.ok\":8},\"g\":{}}\n",
    );

    #[test]
    fn good_journal_parses_clean() {
        let (run, errors) = parse(GOOD);
        assert!(errors.is_empty(), "{errors:?}");
        let meta = run.meta.as_ref().unwrap();
        assert_eq!((meta.driver.as_str(), meta.nodes, meta.seed), ("vivaldi", 70, 61));
        assert_eq!(run.ticks.len(), 2);
        assert_eq!(run.event_count("reject"), 1);
        assert_eq!(run.phases.len(), 1);
        assert_eq!(run.summary_counters, vec![("probe.ok".to_string(), 8)]);
    }

    #[test]
    fn series_rates_match_hand_computation() {
        let (run, _) = parse(GOOD);
        let pts = series(&run);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].coast_rate, Some(0.2));
        assert_eq!(pts[0].fpr, None);
        assert_eq!(pts[1].fpr, Some(0.1));
        assert_eq!(pts[1].tpr, Some(0.75));
        assert_eq!(pts[1].cum_fpr, Some(0.1));
    }

    #[test]
    fn schema_violations_are_reported_with_line_numbers() {
        let bad = concat!(
            "{\"t\":0,\"ev\":\"meta\",\"v\":9,\"driver\":\"x\",\"nodes\":1,\"seed\":0}\n",
            "{\"t\":5,\"ev\":\"tick\",\"d\":{},\"g\":{}}\n",
            "{\"t\":3,\"ev\":\"wat\"}\n",
            "not json\n",
        );
        let (_, errors) = parse(bad);
        let text = errors.join("\n");
        assert!(text.contains("line 1: schema version 9"), "{text}");
        assert!(text.contains("line 3: timestamp 3 goes backwards"), "{text}");
        assert!(text.contains("unknown event tag \"wat\""), "{text}");
        assert!(text.contains("line 4: invalid JSON"), "{text}");
    }

    #[test]
    fn missing_meta_is_an_error() {
        let (_, errors) = parse("{\"t\":0,\"ev\":\"tick\",\"d\":{},\"g\":{}}\n");
        assert!(errors.iter().any(|e| e.contains("no \"meta\" line")), "{errors:?}");
    }
}
