//! `ices-obs` — deterministic observability for the simulation stack.
//!
//! Three pieces, composable but independent:
//!
//! * [`Registry`] — typed metrics (counters / gauges / fixed-bucket
//!   histograms) keyed by `&'static str` names, with point-in-time
//!   [`Snapshot`]s and per-tick deltas. `Vec`-backed, registration
//!   order, no hashing (DET01).
//! * [`Journal`] — a buffered JSONL event stream: tick-stamped counter
//!   deltas, phase timings, and discrete events (evictions, rejections,
//!   filter refreshes, deferred arms). Never panics; I/O errors make it
//!   inert, not fatal.
//! * [`Clock`] / [`TickClock`] — the only time source in the crate.
//!   Simulation time is the tick counter; **no wall clock exists
//!   anywhere in `ices-obs`** (enforced by audit rule OBS01). Benches
//!   that want real time implement `Clock` on their side of the DET02
//!   fence.
//!
//! The determinism contract: with a journal attached or absent, a
//! simulation's observable outputs (coordinates, traces, reports) are
//! bit-for-bit identical — the registry is the single source of truth
//! for counters either way, and journal emission only *reads* state, on
//! the sequential merge path. `crates/sim/tests/obs_invariance.rs`
//! holds this.

#![forbid(unsafe_code)]

mod clock;
mod journal;
mod metrics;
pub mod report;

pub use clock::{Clock, TickClock};
pub use journal::{Journal, SCHEMA_VERSION};
pub use metrics::{CounterId, GaugeId, Histogram, HistogramId, Registry, Snapshot};

/// Canonical metric names shared by the drivers, the journal schema,
/// and the report renderer. One flat namespace, dot-separated.
pub mod names {
    /// Detector verdicts (confusion-matrix cells, attack window only).
    pub const DETECT_TP: &str = "detect.tp";
    pub const DETECT_FP: &str = "detect.fp";
    pub const DETECT_TN: &str = "detect.tn";
    pub const DETECT_FN: &str = "detect.fn";

    /// Protocol-level security actions.
    pub const REPLACEMENTS: &str = "protocol.replacements";
    pub const REPRIEVES: &str = "protocol.reprieves";
    pub const FILTER_REFRESHES: &str = "protocol.filter_refreshes";

    /// Probe outcomes.
    pub const PROBE_OK: &str = "probe.ok";

    /// Fault-injection fallout (mirrors `FaultReport`).
    pub const LOST_PROBES: &str = "fault.lost_probes";
    pub const TIMED_OUT_PROBES: &str = "fault.timed_out_probes";
    pub const PEER_DOWN_PROBES: &str = "fault.peer_down_probes";
    pub const RETRIED_PROBES: &str = "fault.retried_probes";
    pub const COASTED_STEPS: &str = "fault.coasted_steps";
    pub const EVICTIONS: &str = "fault.evictions";
    pub const NODE_DOWN_TICKS: &str = "fault.node_down_ticks";
    pub const STALE_FILTER_FALLBACKS: &str = "fault.stale_filter_fallbacks";
    /// Nodes whose detection arming was deferred because the Surveyor
    /// registry produced an empty candidate draw (total outage).
    pub const DEFERRED_ARMS: &str = "fault.deferred_arms";
    /// Deferred nodes that successfully armed on a later tick.
    pub const LATE_ARMS: &str = "fault.late_arms";

    /// Adversary activity (ground truth, counted at driver intake).
    pub const ATTACK_ACTIVE_LIES: &str = "attack.active_lies";
    /// Tampered samples whose RTT the intake clamp had to raise back to
    /// the measured value (the RTT-deflation invariant).
    pub const ATTACK_CLAMPED_RTTS: &str = "attack.clamped_rtts";
    /// Gauge: displacement a slow-drift adversary has accumulated, ms.
    pub const ATTACK_DRIFT_MS: &str = "attack.drift_accumulated_ms";

    /// Cross-verification defense activity.
    pub const DEFENSE_CROSS_CHECKS: &str = "defense.cross_checks";
    pub const DEFENSE_REJECTIONS: &str = "defense.rejections";

    /// Gauge: mean node-local relative embedding error (journal-only).
    pub const MEAN_LOCAL_ERROR: &str = "embed.mean_local_error";

    /// Histogram: relative error of sampled honest pairs.
    pub const RELATIVE_ERROR: &str = "embed.relative_error";

    /// Bucket bounds for [`RELATIVE_ERROR`].
    pub const RELATIVE_ERROR_BOUNDS: &[f64] =
        &[0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0, 1.5, 2.0, 5.0];

    /// Service daemon (`ices-svc`) traffic. Names stay within the wire
    /// codec's 32-byte counter-name cap so a `StatsReply` can carry
    /// every one of them.
    pub const SVC_RX: &str = "svc.rx_datagrams";
    pub const SVC_TX: &str = "svc.tx_datagrams";
    /// Datagrams the wire codec refused (the loadgen gate pins this
    /// at zero for well-formed traffic).
    pub const SVC_DECODE_ERRORS: &str = "svc.decode_errors";
    pub const SVC_PROBES: &str = "svc.probes";
    pub const SVC_CALIBRATIONS: &str = "svc.calibrations";
    pub const SVC_REGISTRATIONS: &str = "svc.registrations";
    pub const SVC_CLAIMS: &str = "svc.claims";
    pub const SVC_CLAIMS_ACCEPTED: &str = "svc.claims_accepted";
    pub const SVC_CLAIMS_REPRIEVED: &str = "svc.claims_reprieved";
    pub const SVC_CLAIMS_REJECTED: &str = "svc.claims_rejected";
    pub const SVC_CERTS_ISSUED: &str = "svc.certs_issued";
    /// Claims carrying a certificate that failed verification.
    pub const SVC_BAD_CERTS: &str = "svc.bad_certs";
    /// Claims refused because no Surveyor has armed the filter yet.
    pub const SVC_NOT_READY: &str = "svc.not_ready";
}
