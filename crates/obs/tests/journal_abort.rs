//! Regression tests for journal durability when a run dies early.
//!
//! The journal buffers lines in a `BufWriter`, so an abort used to lose
//! the buffered tail. Two abort shapes are covered:
//!
//! * **Destructors skipped** (`std::process::exit`, the moral
//!   equivalent of a `SIGKILL` between poll cycles): everything up to
//!   the last explicit [`Journal::flush`] must be on disk, with the
//!   final line intact — never torn mid-JSON. This is the daemon's
//!   shutdown contract. Exercised by re-executing the test binary so
//!   the exit cannot take the harness down with it.
//! * **Unwind** (a panic inside a journaled run): the `Drop` impl's
//!   best-effort flush runs during unwinding, so *every* written line
//!   must survive even though `finish()` was never called.

use ices_obs::Journal;
use std::path::PathBuf;
use std::process::Command;

/// Env var carrying the journal path into the re-executed child.
const CHILD_PATH_VAR: &str = "ICES_JOURNAL_ABORT_PATH";

fn scratch_path(stem: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ices_{stem}_{}.jsonl", std::process::id()));
    p
}

fn assert_lines_are_whole_json(contents: &str) {
    assert!(
        contents.ends_with('\n'),
        "journal must end with a complete line, got {contents:?}"
    );
    for line in contents.lines() {
        let parsed: Result<serde::Value, _> = serde_json::from_str(line);
        assert!(parsed.is_ok(), "torn or invalid journal line: {line:?}");
        assert!(line.starts_with('{') && line.ends_with('}'));
    }
}

/// Child half of the destructor-skipping test. Inert unless the parent
/// test re-executes this binary with [`CHILD_PATH_VAR`] set: then it
/// journals a short run, flushes, writes one more (buffered, doomed)
/// tick and exits without running any destructor.
#[test]
fn journal_abort_child() {
    let Ok(path) = std::env::var(CHILD_PATH_VAR) else {
        return;
    };
    let mut j = Journal::to_file(&path).unwrap_or_else(|e| panic!("create {path}: {e}"));
    j.meta(0, "abort-child", 4, 61);
    for t in 1..=5 {
        j.tick(t, &[("probe.ok", t)], &[("embed.mean_local_error", 0.5)]);
    }
    j.flush();
    // This line stays in the BufWriter and is lost — the contract is
    // that losing it must not tear the flushed prefix.
    j.tick(6, &[("probe.ok", 6)], &[]);
    std::process::exit(0);
}

#[test]
fn killed_run_keeps_flushed_prefix_intact() {
    let path = scratch_path("journal_abort");
    let _ = std::fs::remove_file(&path);
    let exe = std::env::current_exe().unwrap_or_else(|e| panic!("current_exe: {e}"));
    let status = Command::new(exe)
        .args(["journal_abort_child", "--exact", "--nocapture"])
        .env(CHILD_PATH_VAR, &path)
        .status()
        .unwrap_or_else(|e| panic!("re-exec: {e}"));
    assert!(status.success(), "child aborted abnormally: {status}");

    let contents =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let _ = std::fs::remove_file(&path);
    assert_lines_are_whole_json(&contents);
    let lines: Vec<&str> = contents.lines().collect();
    // meta + the five flushed ticks survive; the post-flush tick was
    // only ever buffered, so it is allowed (expected) to be gone.
    assert_eq!(lines.len(), 6, "flushed prefix incomplete: {lines:#?}");
    assert!(lines[0].contains("\"ev\":\"meta\""));
    assert!(
        lines[5].contains("\"t\":5") && lines[5].ends_with('}'),
        "last flushed tick line torn: {:?}",
        lines[5]
    );
    assert!(
        !contents.contains("\"t\":6"),
        "post-flush tick unexpectedly on disk; the test no longer exercises the buffer"
    );
}

#[test]
fn panicking_run_flushes_on_drop() {
    let path = scratch_path("journal_unwind");
    let _ = std::fs::remove_file(&path);
    let result = std::panic::catch_unwind(|| {
        let mut j =
            Journal::to_file(&path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
        j.meta(0, "unwind", 4, 61);
        for t in 1..=3 {
            j.tick(t, &[("probe.ok", t)], &[]);
        }
        // The run dies here; `j` is dropped during unwinding and its
        // Drop impl must flush the buffered lines.
        panic!("simulated mid-run failure");
    });
    assert!(result.is_err(), "the journaled run was supposed to panic");

    let contents =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let _ = std::fs::remove_file(&path);
    assert_lines_are_whole_json(&contents);
    let lines: Vec<&str> = contents.lines().collect();
    assert_eq!(lines.len(), 4, "drop-flush lost lines: {lines:#?}");
    assert!(lines[3].contains("\"t\":3"));
}

#[test]
fn explicit_flush_is_idempotent_and_keeps_journal_usable() {
    let path = scratch_path("journal_flush");
    let _ = std::fs::remove_file(&path);
    let mut j = Journal::to_file(&path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
    j.meta(0, "flush", 1, 61);
    j.flush();
    j.flush();
    let on_disk =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    assert_eq!(on_disk.lines().count(), 1, "flush did not push the meta line");
    j.tick(1, &[], &[]);
    j.flush();
    assert!(!j.errored(), "flushing flipped the error flag");
    let on_disk =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let _ = std::fs::remove_file(&path);
    assert_eq!(on_disk.lines().count(), 2, "post-flush writes must still land");
    assert_lines_are_whole_json(&on_disk);
}
