//! Compact binary wire codec for the service daemon (`crates/svc`).
//!
//! One datagram carries one [`Message`]: a fixed two-byte header
//! (`version`, `tag`) followed by a tag-specific little-endian payload.
//! The codec is pure — no sockets, no clocks — so it lives here in
//! `ices-core` next to the types it serializes, stays under the full
//! audit regime, and is testable without any network plumbing.
//!
//! Safety posture: `decode` is the daemon's attack surface. Every
//! multi-byte read is bounds-checked, every length field is capped
//! *before* allocation, and every float is validated against the
//! invariants the in-memory types enforce by panicking
//! ([`Coordinate::new`] asserts finiteness; `relative_error` asserts a
//! positive RTT) — a malformed datagram yields a typed [`WireError`],
//! never a panic. Trailing bytes after a well-formed payload are
//! rejected too, so a datagram has exactly one valid reading.
//!
//! Layout conventions:
//!
//! * integers: fixed-width little-endian (`u64` = 8 bytes);
//! * floats: `f64::to_bits` little-endian, finiteness checked on decode;
//! * coordinate: `u8` dimension count (1..=[`MAX_DIMS`]), that many
//!   position components, then the height (finite, non-negative);
//! * `Option<T>`: presence byte `0`/`1`, then `T` when present;
//! * strings: `u8` byte length (≤ [`MAX_NAME_BYTES`]), UTF-8 checked;
//! * counter lists: `u8` entry count (≤ [`MAX_COUNTERS`]).

use crate::certify::CoordinateCertificate;
use crate::model::StateSpaceParams;
use ices_coord::Coordinate;
use std::fmt;

/// Wire protocol version stamped as the first byte of every datagram.
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on an encoded datagram (fits any loopback/Ethernet MTU
/// configuration the loadgen uses; well under the UDP maximum).
pub const MAX_DATAGRAM: usize = 2048;

/// Most embedding dimensions a wire coordinate may carry (the paper's
/// spaces use 2–8 plus a height).
pub const MAX_DIMS: usize = 16;

/// Longest counter name, in bytes, a [`Message::StatsReply`] may carry.
pub const MAX_NAME_BYTES: usize = 32;

/// Most counters a [`Message::StatsReply`] may carry.
pub const MAX_COUNTERS: usize = 48;

/// Typed decode/encode failure. Every variant maps to a stable wire
/// code ([`WireError::code`]) so the daemon can answer malformed
/// datagrams with [`Message::Error`] instead of dropping silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The datagram ended before its payload did.
    Truncated,
    /// The datagram exceeds [`MAX_DATAGRAM`].
    Oversized,
    /// The version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// The tag byte names no known message type.
    BadTag(u8),
    /// A length/count field exceeds its cap.
    BadLength,
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A float field violates its invariant (non-finite component,
    /// negative height, non-positive RTT, ...). Carries the field name.
    BadValue(&'static str),
    /// Bytes remain after a complete payload.
    TrailingBytes,
}

impl WireError {
    /// Stable one-byte error code carried by [`Message::Error`].
    pub fn code(self) -> u8 {
        match self {
            WireError::Truncated => 1,
            WireError::Oversized => 2,
            WireError::BadVersion(_) => 3,
            WireError::BadTag(_) => 4,
            WireError::BadLength => 5,
            WireError::BadUtf8 => 6,
            WireError::BadValue(_) => 7,
            WireError::TrailingBytes => 8,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "datagram truncated"),
            WireError::Oversized => write!(f, "datagram exceeds {MAX_DATAGRAM} bytes"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadLength => write!(f, "length field exceeds its cap"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadValue(what) => write!(f, "invalid value for field `{what}`"),
            WireError::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for WireError {}

/// How the daemon disposed of an [`Message::UpdateClaim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// The claim passed the innovation test and updated the filter.
    Accepted,
    /// Suspicious, but the first-time-peer reprieve applied.
    Reprieved,
    /// Suspicious and rejected; the claimant should be replaced.
    Rejected,
    /// The attached coordinate certificate failed verification.
    BadCertificate,
    /// No Surveyor has registered yet, so no filter is armed.
    NotReady,
}

impl Disposition {
    fn to_byte(self) -> u8 {
        match self {
            Disposition::Accepted => 0,
            Disposition::Reprieved => 1,
            Disposition::Rejected => 2,
            Disposition::BadCertificate => 3,
            Disposition::NotReady => 4,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(Disposition::Accepted),
            1 => Ok(Disposition::Reprieved),
            2 => Ok(Disposition::Rejected),
            3 => Ok(Disposition::BadCertificate),
            4 => Ok(Disposition::NotReady),
            _ => Err(WireError::BadValue("disposition")),
        }
    }
}

/// One service-protocol datagram.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client asks the daemon for its coordinate (and a certificate).
    ProbeRequest {
        /// Caller-chosen correlation nonce, echoed in the reply.
        nonce: u64,
    },
    /// The daemon's coordinate claim, certified when a certifier is
    /// armed.
    ProbeReply {
        /// Echo of the request nonce.
        nonce: u64,
        /// The daemon's current coordinate.
        coordinate: Coordinate,
        /// The daemon's local error estimate `e_l`.
        local_error: f64,
        /// Surveyor-issued certificate over `coordinate`, when armed.
        certificate: Option<CoordinateCertificate>,
    },
    /// Client asks for calibration parameters, optionally disclosing
    /// its coordinate so the daemon can pick the closest Surveyor.
    CalibrationRequest {
        /// The requesting node's id.
        node: u64,
        /// The requester's coordinate, for closest-Surveyor selection.
        coordinate: Option<Coordinate>,
    },
    /// Calibration parameters from the selected Surveyor.
    CalibrationReply {
        /// The Surveyor whose parameters these are.
        surveyor: u64,
        /// The calibrated state-space parameters.
        params: StateSpaceParams,
        /// Daemon time at which the reply was issued.
        issued_at: u64,
    },
    /// A Surveyor registers (or refreshes) itself with the daemon.
    SurveyorRegister {
        /// The Surveyor's id.
        surveyor: u64,
        /// The Surveyor's coordinate.
        coordinate: Coordinate,
        /// Its calibrated parameters.
        params: StateSpaceParams,
    },
    /// Acknowledges a [`Message::SurveyorRegister`].
    RegisterAck {
        /// Echo of the Surveyor id.
        surveyor: u64,
        /// Whether the registration was accepted (invalid parameters
        /// are refused).
        registered: bool,
    },
    /// A coordinate-update claim submitted for vetting.
    UpdateClaim {
        /// The claiming client's id.
        client: u64,
        /// Caller-chosen correlation nonce, echoed in the verdict.
        nonce: u64,
        /// The coordinate the client claims.
        coordinate: Coordinate,
        /// The confidence the client claims (`e_j`).
        peer_error: f64,
        /// The RTT the client reports having measured, milliseconds.
        rtt_ms: f64,
        /// Optional certificate over the claimed coordinate.
        certificate: Option<CoordinateCertificate>,
    },
    /// The vetted outcome of an [`Message::UpdateClaim`].
    UpdateVerdict {
        /// Echo of the claim nonce.
        nonce: u64,
        /// What the detection protocol decided.
        disposition: Disposition,
        /// The innovation the test evaluated (0 when no test ran).
        innovation: f64,
        /// The threshold the innovation was compared against (0 when
        /// no test ran).
        threshold: f64,
    },
    /// Ask the daemon for its counter values.
    StatsRequest,
    /// Counter names and values, registration order.
    StatsReply {
        /// `(name, value)` pairs; at most [`MAX_COUNTERS`].
        counters: Vec<(String, u64)>,
    },
    /// Ask the daemon to shut down (token must match its config).
    Shutdown {
        /// Shared shutdown secret.
        token: u64,
    },
    /// Typed error reply (a [`WireError::code`] or a service code).
    Error {
        /// The error code.
        code: u8,
    },
}

/// Service-level error codes carried by [`Message::Error`] beyond the
/// [`WireError::code`] range.
pub mod service_code {
    /// No Surveyor registered; calibration cannot be served.
    pub const NO_SURVEYOR: u8 = 16;
    /// Shutdown token mismatch.
    pub const BAD_TOKEN: u8 = 17;
    /// A reply-typed message arrived where a request was expected.
    pub const UNEXPECTED: u8 = 18;
}

const TAG_PROBE_REQUEST: u8 = 1;
const TAG_PROBE_REPLY: u8 = 2;
const TAG_CALIBRATION_REQUEST: u8 = 3;
const TAG_CALIBRATION_REPLY: u8 = 4;
const TAG_SURVEYOR_REGISTER: u8 = 5;
const TAG_REGISTER_ACK: u8 = 6;
const TAG_UPDATE_CLAIM: u8 = 7;
const TAG_UPDATE_VERDICT: u8 = 8;
const TAG_STATS_REQUEST: u8 = 9;
const TAG_STATS_REPLY: u8 = 10;
const TAG_SHUTDOWN: u8 = 11;
const TAG_ERROR: u8 = 12;

// ---- Encoding ----

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_coordinate(out: &mut Vec<u8>, c: &Coordinate) -> Result<(), WireError> {
    let dims = c.position().len();
    if dims == 0 || dims > MAX_DIMS {
        return Err(WireError::BadLength);
    }
    out.push(dims as u8);
    for &x in c.position() {
        put_f64(out, x);
    }
    put_f64(out, c.height());
    Ok(())
}

fn put_params(out: &mut Vec<u8>, p: &StateSpaceParams) {
    for v in [p.beta, p.v_w, p.v_u, p.w_bar, p.w0, p.p0] {
        put_f64(out, v);
    }
}

fn put_certificate(out: &mut Vec<u8>, c: &CoordinateCertificate) -> Result<(), WireError> {
    put_u64(out, c.node as u64);
    put_coordinate(out, &c.coordinate)?;
    put_u64(out, c.issuer as u64);
    put_u64(out, c.issued_at);
    put_u64(out, c.ttl);
    put_u64(out, c.tag);
    Ok(())
}

fn put_opt_certificate(
    out: &mut Vec<u8>,
    c: &Option<CoordinateCertificate>,
) -> Result<(), WireError> {
    match c {
        None => out.push(0),
        Some(cert) => {
            out.push(1);
            put_certificate(out, cert)?;
        }
    }
    Ok(())
}

/// Encode a message into a fresh datagram.
///
/// Fails (with the same typed errors decoding uses) when a field
/// exceeds a wire cap — an over-wide coordinate, too many counters, an
/// over-long counter name — or when the encoding would exceed
/// [`MAX_DATAGRAM`].
pub fn encode(msg: &Message) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(64);
    out.push(WIRE_VERSION);
    match msg {
        Message::ProbeRequest { nonce } => {
            out.push(TAG_PROBE_REQUEST);
            put_u64(&mut out, *nonce);
        }
        Message::ProbeReply {
            nonce,
            coordinate,
            local_error,
            certificate,
        } => {
            out.push(TAG_PROBE_REPLY);
            put_u64(&mut out, *nonce);
            put_coordinate(&mut out, coordinate)?;
            put_f64(&mut out, *local_error);
            put_opt_certificate(&mut out, certificate)?;
        }
        Message::CalibrationRequest { node, coordinate } => {
            out.push(TAG_CALIBRATION_REQUEST);
            put_u64(&mut out, *node);
            match coordinate {
                None => out.push(0),
                Some(c) => {
                    out.push(1);
                    put_coordinate(&mut out, c)?;
                }
            }
        }
        Message::CalibrationReply {
            surveyor,
            params,
            issued_at,
        } => {
            out.push(TAG_CALIBRATION_REPLY);
            put_u64(&mut out, *surveyor);
            put_params(&mut out, params);
            put_u64(&mut out, *issued_at);
        }
        Message::SurveyorRegister {
            surveyor,
            coordinate,
            params,
        } => {
            out.push(TAG_SURVEYOR_REGISTER);
            put_u64(&mut out, *surveyor);
            put_coordinate(&mut out, coordinate)?;
            put_params(&mut out, params);
        }
        Message::RegisterAck {
            surveyor,
            registered,
        } => {
            out.push(TAG_REGISTER_ACK);
            put_u64(&mut out, *surveyor);
            put_bool(&mut out, *registered);
        }
        Message::UpdateClaim {
            client,
            nonce,
            coordinate,
            peer_error,
            rtt_ms,
            certificate,
        } => {
            out.push(TAG_UPDATE_CLAIM);
            put_u64(&mut out, *client);
            put_u64(&mut out, *nonce);
            put_coordinate(&mut out, coordinate)?;
            put_f64(&mut out, *peer_error);
            put_f64(&mut out, *rtt_ms);
            put_opt_certificate(&mut out, certificate)?;
        }
        Message::UpdateVerdict {
            nonce,
            disposition,
            innovation,
            threshold,
        } => {
            out.push(TAG_UPDATE_VERDICT);
            put_u64(&mut out, *nonce);
            out.push(disposition.to_byte());
            put_f64(&mut out, *innovation);
            put_f64(&mut out, *threshold);
        }
        Message::StatsRequest => out.push(TAG_STATS_REQUEST),
        Message::StatsReply { counters } => {
            out.push(TAG_STATS_REPLY);
            if counters.len() > MAX_COUNTERS {
                return Err(WireError::BadLength);
            }
            out.push(counters.len() as u8);
            for (name, value) in counters {
                let bytes = name.as_bytes();
                if bytes.is_empty() || bytes.len() > MAX_NAME_BYTES {
                    return Err(WireError::BadLength);
                }
                out.push(bytes.len() as u8);
                out.extend_from_slice(bytes);
                put_u64(&mut out, *value);
            }
        }
        Message::Shutdown { token } => {
            out.push(TAG_SHUTDOWN);
            put_u64(&mut out, *token);
        }
        Message::Error { code } => {
            out.push(TAG_ERROR);
            out.push(*code);
        }
    }
    if out.len() > MAX_DATAGRAM {
        return Err(WireError::Oversized);
    }
    Ok(out)
}

// ---- Decoding ----

/// Bounds-checked byte reader over one datagram.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let bytes: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// A float with no further constraint than finiteness.
    fn f64_finite(&mut self, what: &'static str) -> Result<f64, WireError> {
        let v = f64::from_bits(self.u64()?);
        if !v.is_finite() {
            return Err(WireError::BadValue(what));
        }
        Ok(v)
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadValue(what)),
        }
    }

    /// A coordinate, validated against [`Coordinate::new`]'s invariants
    /// *before* construction so the panicking constructor never fires
    /// on wire input.
    fn coordinate(&mut self) -> Result<Coordinate, WireError> {
        let dims = self.u8()? as usize;
        if dims == 0 || dims > MAX_DIMS {
            return Err(WireError::BadLength);
        }
        let mut position = Vec::with_capacity(dims);
        for _ in 0..dims {
            position.push(self.f64_finite("coordinate component")?);
        }
        let height = self.f64_finite("coordinate height")?;
        if height < 0.0 {
            return Err(WireError::BadValue("coordinate height"));
        }
        Ok(Coordinate::new(position, height))
    }

    /// State-space parameters: finite on the wire; model invariants
    /// (stationarity, positive variances) are the daemon's to check
    /// via [`StateSpaceParams::check`], answering with a refusal
    /// rather than a decode error.
    fn params(&mut self) -> Result<StateSpaceParams, WireError> {
        Ok(StateSpaceParams {
            beta: self.f64_finite("beta")?,
            v_w: self.f64_finite("v_w")?,
            v_u: self.f64_finite("v_u")?,
            w_bar: self.f64_finite("w_bar")?,
            w0: self.f64_finite("w0")?,
            p0: self.f64_finite("p0")?,
        })
    }

    fn certificate(&mut self) -> Result<CoordinateCertificate, WireError> {
        let node = usize::try_from(self.u64()?).map_err(|_| WireError::BadValue("cert node"))?;
        let coordinate = self.coordinate()?;
        let issuer =
            usize::try_from(self.u64()?).map_err(|_| WireError::BadValue("cert issuer"))?;
        let issued_at = self.u64()?;
        let ttl = self.u64()?;
        let tag = self.u64()?;
        Ok(CoordinateCertificate {
            node,
            coordinate,
            issuer,
            issued_at,
            ttl,
            tag,
        })
    }

    fn opt_certificate(&mut self) -> Result<Option<CoordinateCertificate>, WireError> {
        if self.bool("certificate presence")? {
            Ok(Some(self.certificate()?))
        } else {
            Ok(None)
        }
    }

    fn finished(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

/// Decode one datagram. Never panics: any malformed input yields a
/// typed [`WireError`] the daemon can answer with [`Message::Error`].
pub fn decode(buf: &[u8]) -> Result<Message, WireError> {
    if buf.len() > MAX_DATAGRAM {
        return Err(WireError::Oversized);
    }
    let mut r = Reader::new(buf);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let tag = r.u8()?;
    let msg = match tag {
        TAG_PROBE_REQUEST => Message::ProbeRequest { nonce: r.u64()? },
        TAG_PROBE_REPLY => {
            let nonce = r.u64()?;
            let coordinate = r.coordinate()?;
            let local_error = r.f64_finite("local_error")?;
            if local_error < 0.0 {
                return Err(WireError::BadValue("local_error"));
            }
            let certificate = r.opt_certificate()?;
            Message::ProbeReply {
                nonce,
                coordinate,
                local_error,
                certificate,
            }
        }
        TAG_CALIBRATION_REQUEST => {
            let node = r.u64()?;
            let coordinate = if r.bool("coordinate presence")? {
                Some(r.coordinate()?)
            } else {
                None
            };
            Message::CalibrationRequest { node, coordinate }
        }
        TAG_CALIBRATION_REPLY => Message::CalibrationReply {
            surveyor: r.u64()?,
            params: r.params()?,
            issued_at: r.u64()?,
        },
        TAG_SURVEYOR_REGISTER => Message::SurveyorRegister {
            surveyor: r.u64()?,
            coordinate: r.coordinate()?,
            params: r.params()?,
        },
        TAG_REGISTER_ACK => Message::RegisterAck {
            surveyor: r.u64()?,
            registered: r.bool("registered")?,
        },
        TAG_UPDATE_CLAIM => {
            let client = r.u64()?;
            let nonce = r.u64()?;
            let coordinate = r.coordinate()?;
            let peer_error = r.f64_finite("peer_error")?;
            if peer_error < 0.0 {
                return Err(WireError::BadValue("peer_error"));
            }
            let rtt_ms = r.f64_finite("rtt_ms")?;
            // `relative_error` asserts a strictly positive measured
            // RTT; enforce it at the trust boundary instead.
            if rtt_ms <= 0.0 {
                return Err(WireError::BadValue("rtt_ms"));
            }
            let certificate = r.opt_certificate()?;
            Message::UpdateClaim {
                client,
                nonce,
                coordinate,
                peer_error,
                rtt_ms,
                certificate,
            }
        }
        TAG_UPDATE_VERDICT => {
            let nonce = r.u64()?;
            let disposition = Disposition::from_byte(r.u8()?)?;
            let innovation = r.f64_finite("innovation")?;
            let threshold = r.f64_finite("threshold")?;
            Message::UpdateVerdict {
                nonce,
                disposition,
                innovation,
                threshold,
            }
        }
        TAG_STATS_REQUEST => Message::StatsRequest,
        TAG_STATS_REPLY => {
            let count = r.u8()? as usize;
            if count > MAX_COUNTERS {
                return Err(WireError::BadLength);
            }
            let mut counters = Vec::with_capacity(count);
            for _ in 0..count {
                let len = r.u8()? as usize;
                if len == 0 || len > MAX_NAME_BYTES {
                    return Err(WireError::BadLength);
                }
                let name = std::str::from_utf8(r.take(len)?)
                    .map_err(|_| WireError::BadUtf8)?
                    .to_string();
                let value = r.u64()?;
                counters.push((name, value));
            }
            Message::StatsReply { counters }
        }
        TAG_SHUTDOWN => Message::Shutdown { token: r.u64()? },
        TAG_ERROR => Message::Error { code: r.u8()? },
        other => return Err(WireError::BadTag(other)),
    };
    r.finished()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord() -> Coordinate {
        Coordinate::new(vec![3.0, -4.0], 1.5)
    }

    fn params() -> StateSpaceParams {
        StateSpaceParams {
            beta: 0.8,
            v_w: 0.001,
            v_u: 0.002,
            w_bar: 0.02,
            w0: 0.1,
            p0: 0.01,
        }
    }

    fn cert() -> CoordinateCertificate {
        CoordinateCertificate {
            node: 42,
            coordinate: coord(),
            issuer: 7,
            issued_at: 1000,
            ttl: 60,
            tag: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn every_message_round_trips() {
        let msgs = vec![
            Message::ProbeRequest { nonce: 9 },
            Message::ProbeReply {
                nonce: 9,
                coordinate: coord(),
                local_error: 0.25,
                certificate: Some(cert()),
            },
            Message::ProbeReply {
                nonce: 10,
                coordinate: coord(),
                local_error: 0.0,
                certificate: None,
            },
            Message::CalibrationRequest {
                node: 3,
                coordinate: Some(coord()),
            },
            Message::CalibrationRequest {
                node: 4,
                coordinate: None,
            },
            Message::CalibrationReply {
                surveyor: 1,
                params: params(),
                issued_at: 77,
            },
            Message::SurveyorRegister {
                surveyor: 1,
                coordinate: coord(),
                params: params(),
            },
            Message::RegisterAck {
                surveyor: 1,
                registered: true,
            },
            Message::UpdateClaim {
                client: 12,
                nonce: 5,
                coordinate: coord(),
                peer_error: 0.2,
                rtt_ms: 48.5,
                certificate: Some(cert()),
            },
            Message::UpdateVerdict {
                nonce: 5,
                disposition: Disposition::Rejected,
                innovation: 3.5,
                threshold: 0.4,
            },
            Message::StatsRequest,
            Message::StatsReply {
                counters: vec![("svc.rx_datagrams".into(), 10), ("svc.claims".into(), 3)],
            },
            Message::Shutdown { token: 0xFEED },
            Message::Error { code: 4 },
        ];
        for msg in msgs {
            let bytes = encode(&msg).unwrap_or_else(|e| panic!("encode {msg:?}: {e}"));
            assert!(bytes.len() <= MAX_DATAGRAM);
            let back = decode(&bytes).unwrap_or_else(|e| panic!("decode {msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn truncation_at_every_length_is_a_typed_error() {
        let bytes = encode(&Message::UpdateClaim {
            client: 12,
            nonce: 5,
            coordinate: coord(),
            peer_error: 0.2,
            rtt_ms: 48.5,
            certificate: Some(cert()),
        })
        .unwrap_or_else(|e| panic!("{e}"));
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded: {r:?}");
        }
    }

    #[test]
    fn version_tag_and_size_are_policed() {
        assert_eq!(decode(&[]), Err(WireError::Truncated));
        assert_eq!(decode(&[9, 1, 0, 0, 0, 0, 0, 0, 0, 0]), Err(WireError::BadVersion(9)));
        assert_eq!(decode(&[WIRE_VERSION, 200]), Err(WireError::BadTag(200)));
        let huge = vec![0u8; MAX_DATAGRAM + 1];
        assert_eq!(decode(&huge), Err(WireError::Oversized));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&Message::ProbeRequest { nonce: 1 }).unwrap_or_else(|e| panic!("{e}"));
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn non_finite_and_invalid_floats_are_rejected() {
        // A hand-built ProbeReply whose height is NaN.
        let mut bytes = vec![WIRE_VERSION, TAG_PROBE_REPLY];
        bytes.extend_from_slice(&9u64.to_le_bytes());
        bytes.push(1); // dims
        bytes.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        bytes.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        bytes.extend_from_slice(&0.1f64.to_bits().to_le_bytes());
        bytes.push(0);
        assert_eq!(
            decode(&bytes),
            Err(WireError::BadValue("coordinate height"))
        );
        // An UpdateClaim with rtt_ms = 0 must be refused before the
        // relative_error assertion could ever see it.
        let claim = encode(&Message::UpdateClaim {
            client: 1,
            nonce: 1,
            coordinate: coord(),
            peer_error: 0.1,
            rtt_ms: 1.0,
            certificate: None,
        })
        .unwrap_or_else(|e| panic!("{e}"));
        let mut zeroed = claim.clone();
        // rtt_ms is the 8 bytes right before the trailing presence byte.
        let at = zeroed.len() - 9;
        zeroed[at..at + 8].copy_from_slice(&0.0f64.to_bits().to_le_bytes());
        assert_eq!(decode(&zeroed), Err(WireError::BadValue("rtt_ms")));
    }

    #[test]
    fn coordinate_caps_are_enforced_on_encode_and_decode() {
        let wide = Coordinate::new(vec![0.5; MAX_DIMS + 1], 0.0);
        assert_eq!(
            encode(&Message::ProbeRequest { nonce: 0 }).map(|_| ()),
            Ok(())
        );
        assert_eq!(
            encode(&Message::ProbeReply {
                nonce: 0,
                coordinate: wide,
                local_error: 0.0,
                certificate: None,
            }),
            Err(WireError::BadLength)
        );
        let mut bytes = vec![WIRE_VERSION, TAG_PROBE_REPLY];
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.push(0); // zero dims
        assert_eq!(decode(&bytes), Err(WireError::BadLength));
    }

    #[test]
    fn stats_reply_caps_are_enforced() {
        let too_many = Message::StatsReply {
            counters: (0..MAX_COUNTERS + 1).map(|i| (format!("c{i}"), 0)).collect(),
        };
        assert_eq!(encode(&too_many), Err(WireError::BadLength));
        let long_name = Message::StatsReply {
            counters: vec![("x".repeat(MAX_NAME_BYTES + 1), 0)],
        };
        assert_eq!(encode(&long_name), Err(WireError::BadLength));
    }

    #[test]
    fn error_codes_are_stable_and_distinct() {
        let all = [
            WireError::Truncated,
            WireError::Oversized,
            WireError::BadVersion(0),
            WireError::BadTag(0),
            WireError::BadLength,
            WireError::BadUtf8,
            WireError::BadValue("x"),
            WireError::TrailingBytes,
        ];
        let codes: std::collections::BTreeSet<u8> = all.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), all.len());
        assert!(codes.iter().all(|&c| c < super::service_code::NO_SURVEYOR));
    }
}
