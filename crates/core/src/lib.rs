//! Securing Internet coordinate embedding systems — the paper's core.
//!
//! This crate implements the primary contribution of Kaafar et al.
//! (SIGCOMM 2007): a **generic malicious-behavior detector** for the
//! embedding phase of Internet coordinate systems, built from four
//! pieces:
//!
//! 1. [`model`] — the linear state-space model of a node's nominal
//!    relative error: `Δ_{n+1} = β·Δ_n + W_n`, observed through
//!    `D_n = Δ_n + U_n` (paper §2, Eqs. 1–2).
//! 2. [`kalman`] — the scalar Kalman filter tracking that model and
//!    exposing the *innovation process* `η_n = D_n − Δ̂_{n|n−1}` with its
//!    variance `v_η,n = v_U + P_{n|n−1}` (§2.1).
//! 3. [`em`] — maximum-likelihood calibration of the model parameters
//!    `θ = (β, v_W, v_U, w̄, w₀, p₀)` by Expectation–Maximization over a
//!    clean measurement trace (§2.2), using a Rauch–Tung–Striebel
//!    smoother with the lag-one covariance recursion for the E-step.
//! 4. [`detector`] + [`protocol`] + [`surveyor`] — the hypothesis test
//!    `|η_n| ≥ √v_η,n · Q⁻¹(α/2)` flagging suspicious embedding steps
//!    (§4.1), the trusted **Surveyor** infrastructure that calibrates
//!    filters in attack-free conditions and shares them with nearby
//!    nodes (§3.3), and the generic detection protocol with its
//!    first-time-peer reprieve and filter-refresh rules (§4.2).
//!
//! The detector never looks at coordinates or geometry — only at the
//! dimensionless relative error every embedding method already computes —
//! which is what makes one implementation secure both Vivaldi and NPS.
//!
//! As an extension, [`certify`] implements the usage-phase protection the
//! paper's §6 sketches as future work: Surveyor-issued coordinate
//! certificates with validity periods.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod certify;
pub mod detector;
pub mod em;
pub mod kalman;
pub mod model;
pub mod protocol;
pub mod surveyor;
pub mod wire;

pub use batch::DetectorBank;
pub use certify::{Certifier, CertificateError, CoordinateCertificate};
pub use detector::{Detector, DetectorError, Outlook, Verdict, SAMPLE_STARVATION_LIMIT};
pub use em::{calibrate, CalibrationOutcome, EmConfig};
pub use kalman::KalmanFilter;
pub use model::{ModelError, StateSpaceParams};
pub use protocol::{
    vet_sequences, vet_single, ConfigError, SecureNode, SecureStep, SecurityConfig, VetEvent,
};
pub use surveyor::{SurveyorInfo, SurveyorRegistry};
pub use wire::{Disposition, Message, WireError, MAX_DATAGRAM, WIRE_VERSION};
