//! The innovation-based hypothesis test (§4.1 of the paper).
//!
//! At each embedding step the node observes a measured relative error
//! `D_n` and the Kalman filter supplies the prediction `Δ̂_{n|n−1}` with
//! innovation variance `v_η,n`. Under hypothesis `H₀` ("the peer is
//! honest") the innovation `η_n = D_n − Δ̂_{n|n−1}` is zero-mean gaussian
//! with variance `v_η,n`, so for significance level `α` the step is
//! flagged as suspicious when
//!
//! ```text
//! |D_n − Δ̂_{n|n−1}| ≥ t_n = √v_η,n · Q⁻¹(α/2)            (Eq. 5)
//! ```
//!
//! On rejection the step is aborted and `D_n` is **discarded** — it never
//! updates the filter state — so a malicious stream cannot drag the
//! filter toward itself.

use crate::kalman::KalmanFilter;
use crate::model::{ModelError, StateSpaceParams};
use ices_stats::q_inverse;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a [`Detector`] could not be built or consulted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorError {
    /// Significance level outside `(0, 1)`.
    InvalidAlpha(f64),
    /// The calibrated parameters violate a model invariant.
    InvalidParams(ModelError),
    /// The observation handed to the test is not a finite number.
    NonFiniteObservation(f64),
}

impl fmt::Display for DetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorError::InvalidAlpha(a) => {
                write!(f, "significance level must be in (0, 1), got {a}")
            }
            DetectorError::InvalidParams(e) => write!(f, "invalid parameters: {e}"),
            DetectorError::NonFiniteObservation(d) => {
                write!(f, "observation must be finite, got {d}")
            }
        }
    }
}

impl std::error::Error for DetectorError {}

impl From<ModelError> for DetectorError {
    fn from(e: ModelError) -> Self {
        DetectorError::InvalidParams(e)
    }
}

/// Outcome of testing one embedding step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Whether the step was flagged as suspicious (and therefore aborted).
    pub suspicious: bool,
    /// The innovation `η_n` the test evaluated.
    pub innovation: f64,
    /// The threshold `t_n` the innovation was compared against.
    pub threshold: f64,
    /// The predicted relative error `Δ̂_{n|n−1}`.
    pub predicted: f64,
    /// The innovation variance `v_η,n`.
    pub innovation_variance: f64,
}

/// The detector's current outlook: the prediction the *next* observation
/// will be judged against, plus the threshold the test would apply at
/// the configured `α`. Returned by [`Detector::prediction`] so
/// diagnostics never have to fabricate a dummy observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outlook {
    /// The predicted relative error `Δ̂_{n|n−1}`.
    pub predicted: f64,
    /// The innovation variance `v_η,n`.
    pub innovation_variance: f64,
    /// The threshold `t_n = √v_η,n · Q⁻¹(α/2)` at the configured `α`.
    pub threshold: f64,
}

/// Consecutive measurement-free steps (lost/timed-out probes absorbed
/// via [`Detector::coast`]) after which the detector reports sample
/// starvation: the coasted filter has drifted to its stationary prior
/// and should be recalibrated from a Surveyor before its verdicts are
/// trusted again.
pub const SAMPLE_STARVATION_LIMIT: u32 = 64;

/// A Kalman filter armed with the significance-level test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detector {
    filter: KalmanFilter,
    alpha: f64,
    /// Current run of coasted (measurement-free) steps.
    starvation_streak: u32,
}

impl Detector {
    /// Build a detector from calibrated parameters and a significance
    /// level `α ∈ (0, 1)` (the paper settles on 5%), rejecting invalid
    /// inputs with a typed error instead of panicking.
    pub fn try_new(params: StateSpaceParams, alpha: f64) -> Result<Self, DetectorError> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(DetectorError::InvalidAlpha(alpha));
        }
        Ok(Self {
            filter: KalmanFilter::try_new(params)?,
            alpha,
            starvation_streak: 0,
        })
    }

    /// [`Detector::try_new`] for contexts that cannot propagate the
    /// error (the long-standing public constructor).
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1)` or the parameters are
    /// invalid.
    pub fn new(params: StateSpaceParams, alpha: f64) -> Self {
        Self::try_new(params, alpha).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The configured significance level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The underlying filter (read access for diagnostics).
    pub fn filter(&self) -> &KalmanFilter {
        &self.filter
    }

    /// Mutable filter access for the batched kernel's scatter phase.
    /// Crate-private: only `crate::batch` writes filter state directly.
    pub(crate) fn filter_mut(&mut self) -> &mut KalmanFilter {
        &mut self.filter
    }

    /// Overwrite the starvation streak from the batched kernel's scatter
    /// phase. Crate-private for the same reason as
    /// [`Detector::filter_mut`].
    pub(crate) fn set_starvation_streak(&mut self, streak: u32) {
        self.starvation_streak = streak;
    }

    /// The current prediction state and the threshold the next
    /// observation will face — side-effect-free, for diagnostics that
    /// previously called `evaluate(0.0)` just to read `predicted` and
    /// `threshold` out of the verdict.
    pub fn prediction(&self) -> Outlook {
        let pred = self.filter.predict();
        Outlook {
            predicted: pred.predicted,
            innovation_variance: pred.innovation_variance,
            threshold: pred.innovation_variance.sqrt() * q_inverse(self.alpha / 2.0),
        }
    }

    /// The threshold `t_n` for an arbitrary significance level given the
    /// current prediction state (used by the reprieve mechanism, which
    /// re-tests at level `e_l·α`), rejecting an out-of-range level with
    /// a typed error.
    pub fn try_threshold_at(&self, alpha: f64) -> Result<f64, DetectorError> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(DetectorError::InvalidAlpha(alpha));
        }
        let pred = self.filter.predict();
        Ok(pred.innovation_variance.sqrt() * q_inverse(alpha / 2.0))
    }

    /// [`Detector::try_threshold_at`] for contexts that cannot propagate
    /// the error.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn threshold_at(&self, alpha: f64) -> f64 {
        self.try_threshold_at(alpha).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Evaluate a measured relative error *without* updating the filter,
    /// rejecting a non-finite observation with a typed error.
    ///
    /// Exposed separately so the reprieve logic can inspect a verdict,
    /// apply a second test, and only then decide whether to accept.
    pub fn try_evaluate(&self, observation: f64) -> Result<Verdict, DetectorError> {
        if !observation.is_finite() {
            return Err(DetectorError::NonFiniteObservation(observation));
        }
        Ok(self.evaluate_finite(observation))
    }

    /// [`Detector::try_evaluate`] for contexts that cannot propagate the
    /// error.
    ///
    /// # Panics
    /// Panics on a non-finite observation.
    pub fn evaluate(&self, observation: f64) -> Verdict {
        self.try_evaluate(observation).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The test body, after the observation has been checked finite.
    fn evaluate_finite(&self, observation: f64) -> Verdict {
        let pred = self.filter.predict();
        let innovation = observation - pred.predicted;
        let threshold = pred.innovation_variance.sqrt() * q_inverse(self.alpha / 2.0);
        Verdict {
            suspicious: innovation.abs() >= threshold,
            innovation,
            threshold,
            predicted: pred.predicted,
            innovation_variance: pred.innovation_variance,
        }
    }

    /// Accept an observation: incorporate `D_n` into the filter state.
    /// Call only for steps that passed the test (or were reprieved) —
    /// rejected observations must stay out of the filter.
    pub fn accept(&mut self, observation: f64) {
        self.filter.update(observation);
        self.starvation_streak = 0;
    }

    /// Absorb a missing sample (lost or timed-out probe): the filter
    /// takes a time-update only — the state coasts along the model
    /// dynamics and the variance widens — so the innovation statistics
    /// stay honest instead of the filter treating silence as evidence.
    /// Consecutive coasts accumulate into the sample-starvation signal.
    pub fn coast(&mut self) {
        self.filter.time_update();
        self.starvation_streak = self.starvation_streak.saturating_add(1);
    }

    /// Whether the detector is sample-starved: at least
    /// [`SAMPLE_STARVATION_LIMIT`] consecutive probes produced no
    /// measurement. A starved detector's filter has coasted to its
    /// stationary prior; callers should refresh calibration (or keep a
    /// stale Surveyor calibration, which this signal bounds).
    pub fn starved(&self) -> bool {
        self.starvation_streak >= SAMPLE_STARVATION_LIMIT
    }

    /// Consecutive measurement-free steps so far.
    pub fn starvation_streak(&self) -> u32 {
        self.starvation_streak
    }

    /// Test-and-update in one call: evaluates, and feeds the filter only
    /// if the step is *not* suspicious.
    pub fn assess(&mut self, observation: f64) -> Verdict {
        let verdict = self.evaluate(observation);
        if !verdict.suspicious {
            self.accept(observation);
        }
        verdict
    }

    /// Whether the filter has hit the paper's recalibration condition,
    /// **or** the detector is sample-starved (see [`Detector::starved`]).
    pub fn needs_recalibration(&self) -> bool {
        self.filter.needs_recalibration() || self.starved()
    }

    /// Install freshly calibrated parameters (from a Surveyor). Clears
    /// the starvation streak along with the filter state.
    pub fn recalibrate(&mut self, params: StateSpaceParams) {
        self.filter.recalibrate(params);
        self.starvation_streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_stats::rng::stream_rng;

    fn params() -> StateSpaceParams {
        StateSpaceParams {
            beta: 0.85,
            v_w: 0.003,
            v_u: 0.002,
            w_bar: 0.015,
            w0: 0.3,
            p0: 0.02,
        }
    }

    #[test]
    fn threshold_matches_equation_five() {
        let d = Detector::new(params(), 0.05);
        let verdict = d.evaluate(0.3);
        let want = verdict.innovation_variance.sqrt() * q_inverse(0.025);
        assert!((verdict.threshold - want).abs() < 1e-12);
        // For α = 5%, Q⁻¹(0.025) ≈ 1.96.
        assert!(
            (verdict.threshold / verdict.innovation_variance.sqrt() - 1.959_963_984_540_054).abs()
                < 1e-9
        );
    }

    #[test]
    fn flag_rate_on_clean_data_matches_alpha_without_censoring() {
        // With every observation fed to the filter (no censoring), the
        // fraction of innovations beyond the threshold must equal α.
        let p = params();
        let mut rng = stream_rng(20, 0);
        let trace = p.simulate(20_000, &mut rng);
        let mut d = Detector::new(p, 0.05);
        let mut flagged = 0usize;
        for &obs in &trace {
            if d.evaluate(obs).suspicious {
                flagged += 1;
            }
            d.accept(obs);
        }
        let rate = flagged as f64 / trace.len() as f64;
        assert!(
            (rate - 0.05).abs() < 0.01,
            "uncensored flag rate {rate} should be ≈ 0.05"
        );
    }

    #[test]
    fn censored_operation_inflates_false_positives_only_mildly() {
        // The protocol discards rejected observations (they never update
        // the filter), which slightly raises the false-positive rate
        // above α on clean data — the cost the paper's Fig 11 quantifies.
        let p = params();
        let mut rng = stream_rng(20, 1);
        let trace = p.simulate(20_000, &mut rng);
        let mut d = Detector::new(p, 0.05);
        let mut flagged = 0usize;
        for &obs in &trace {
            if d.assess(obs).suspicious {
                flagged += 1;
            }
        }
        let fpr = flagged as f64 / trace.len() as f64;
        assert!(
            (0.04..0.13).contains(&fpr),
            "censored clean-data rejection rate {fpr} out of expected band"
        );
    }

    #[test]
    fn flags_large_deviations() {
        let p = params();
        let mut d = Detector::new(p, 0.05);
        // Warm the filter with nominal data.
        for _ in 0..50 {
            d.accept(p.stationary_mean());
        }
        // A blatant lie: relative error far beyond anything nominal.
        let verdict = d.evaluate(5.0);
        assert!(verdict.suspicious);
    }

    #[test]
    fn rejected_observations_do_not_move_the_filter() {
        let p = params();
        let mut d = Detector::new(p, 0.05);
        for _ in 0..50 {
            d.accept(p.stationary_mean());
        }
        let before = d.filter().clone();
        let verdict = d.assess(10.0);
        assert!(verdict.suspicious);
        assert_eq!(
            d.filter(),
            &before,
            "a rejected step must not update filter state"
        );
    }

    #[test]
    fn smaller_alpha_is_more_lenient() {
        let d1 = Detector::new(params(), 0.01);
        let d5 = Detector::new(params(), 0.05);
        let t1 = d1.prediction().threshold;
        let t5 = d5.prediction().threshold;
        assert!(
            t1 > t5,
            "a stricter significance level has a larger threshold: {t1} vs {t5}"
        );
    }

    #[test]
    fn prediction_matches_evaluate_without_an_observation() {
        let p = params();
        let mut d = Detector::new(p, 0.05);
        for obs in [0.35, 0.28, 0.41] {
            d.accept(obs);
        }
        let before = d.filter().clone();
        let outlook = d.prediction();
        assert_eq!(d.filter(), &before, "prediction must be side-effect-free");
        // Bit-for-bit the same numbers evaluate() folds into its verdict.
        let v = d.evaluate(0.0);
        assert_eq!(outlook.predicted.to_bits(), v.predicted.to_bits());
        assert_eq!(
            outlook.innovation_variance.to_bits(),
            v.innovation_variance.to_bits()
        );
        assert_eq!(outlook.threshold.to_bits(), v.threshold.to_bits());
    }

    #[test]
    fn threshold_at_is_monotone_decreasing_in_alpha() {
        let d = Detector::new(params(), 0.05);
        let mut prev = f64::INFINITY;
        for alpha in [0.001, 0.01, 0.03, 0.05, 0.1, 0.3] {
            let t = d.threshold_at(alpha);
            assert!(t < prev, "threshold must shrink as α grows");
            prev = t;
        }
    }

    #[test]
    fn detection_power_grows_with_attack_magnitude() {
        let p = params();
        let mut rng = stream_rng(21, 0);
        let clean = p.simulate(2000, &mut rng);
        let mut rates = Vec::new();
        for shift in [0.05, 0.2, 0.8] {
            let mut d = Detector::new(p, 0.05);
            let mut caught = 0usize;
            for &obs in &clean {
                // Every observation tampered upward by `shift`.
                if d.assess(obs + shift).suspicious {
                    caught += 1;
                }
            }
            rates.push(caught as f64 / clean.len() as f64);
        }
        assert!(
            rates[0] < rates[1] && rates[1] < rates[2],
            "rates {rates:?}"
        );
        assert!(
            rates[2] > 0.95,
            "large attacks must be nearly always caught"
        );
    }

    #[test]
    fn recalibration_signal_propagates() {
        let p = params();
        let mut d = Detector::new(p, 0.05);
        for _ in 0..10 {
            d.accept(1e3);
        }
        assert!(d.needs_recalibration());
        d.recalibrate(p);
        assert!(!d.needs_recalibration());
    }

    #[test]
    fn coasting_widens_the_threshold_without_corrupting_state() {
        let p = params();
        let mut d = Detector::new(p, 0.05);
        for _ in 0..50 {
            d.accept(p.stationary_mean());
        }
        let before = d.evaluate(p.stationary_mean());
        let updates = d.filter().updates();
        for _ in 0..10 {
            d.coast();
        }
        let after = d.evaluate(p.stationary_mean());
        assert!(
            after.threshold > before.threshold,
            "missing samples must widen the test band: {} vs {}",
            after.threshold,
            before.threshold
        );
        assert_eq!(
            d.filter().updates(),
            updates,
            "coasting must not count as observations"
        );
        // A nominal observation after a blind stretch is not flagged.
        assert!(!after.suspicious);
    }

    #[test]
    fn starvation_fires_at_limit_and_resets_on_sample_or_recalibration() {
        let p = params();
        let mut d = Detector::new(p, 0.05);
        for _ in 0..SAMPLE_STARVATION_LIMIT - 1 {
            d.coast();
        }
        assert!(!d.starved());
        assert!(!d.needs_recalibration());
        d.coast();
        assert!(d.starved());
        assert!(d.needs_recalibration(), "starvation feeds the recal signal");
        // One real sample clears the streak.
        d.accept(p.stationary_mean());
        assert!(!d.starved());
        assert_eq!(d.starvation_streak(), 0);
        // So does recalibration.
        for _ in 0..SAMPLE_STARVATION_LIMIT {
            d.coast();
        }
        assert!(d.starved());
        d.recalibrate(p);
        assert!(!d.starved());
    }

    #[test]
    fn assess_resets_starvation_on_accepted_sample() {
        let p = params();
        let mut d = Detector::new(p, 0.05);
        for _ in 0..5 {
            d.coast();
        }
        assert_eq!(d.starvation_streak(), 5);
        let v = d.assess(p.stationary_mean());
        assert!(!v.suspicious);
        assert_eq!(d.starvation_streak(), 0);
        // A rejected sample is not a measurement: streak keeps growing.
        d.coast();
        let v = d.assess(100.0);
        assert!(v.suspicious);
        assert_eq!(d.starvation_streak(), 1);
    }

    #[test]
    #[should_panic(expected = "significance level must be in (0, 1)")]
    fn rejects_alpha_of_one() {
        Detector::new(params(), 1.0);
    }

    #[test]
    fn try_apis_report_typed_errors() {
        assert_eq!(
            Detector::try_new(params(), 0.0).err(),
            Some(DetectorError::InvalidAlpha(0.0))
        );
        let mut bad = params();
        bad.beta = 1.5;
        assert!(matches!(
            Detector::try_new(bad, 0.05),
            Err(DetectorError::InvalidParams(ModelError::NonStationaryBeta(_)))
        ));
        let d = Detector::new(params(), 0.05);
        assert_eq!(
            d.try_threshold_at(2.0).err(),
            Some(DetectorError::InvalidAlpha(2.0))
        );
        assert!(matches!(
            d.try_evaluate(f64::NAN),
            Err(DetectorError::NonFiniteObservation(_))
        ));
        // The happy paths agree with the panicking shims.
        let v = d.try_evaluate(0.4).expect("finite observation");
        assert_eq!(v, d.evaluate(0.4));
        assert_eq!(
            d.try_threshold_at(0.01).expect("valid level"),
            d.threshold_at(0.01)
        );
    }

    #[test]
    fn serde_roundtrip() {
        let mut d = Detector::new(params(), 0.05);
        d.accept(0.3);
        let json = serde_json::to_string(&d).expect("serialize");
        let back: Detector = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(d, back);
    }
}
