//! The Surveyor infrastructure (§3.3 and §4.2 of the paper).
//!
//! Surveyors are trusted, honest nodes that position themselves **using
//! each other exclusively**, so their coordinates — and the relative-error
//! dynamics they observe — are immune to malicious behavior in the rest
//! of the system. Each Surveyor calibrates a Kalman filter on its own
//! clean embedding and shares the resulting [`StateSpaceParams`] as a
//! "representation of normal system behavior".
//!
//! The registry models the infrastructure server the paper describes
//! (NPS's membership server, or a Vivaldi bootstrap server): joining
//! nodes ask it for a handful of random Surveyors, measure their RTT to
//! each, and adopt the filter of the closest — §3.3 shows prediction
//! accuracy improves with node–Surveyor locality. On refresh, a node
//! instead picks the Surveyor closest in *estimated* (coordinate)
//! distance.

use crate::model::StateSpaceParams;
use ices_coord::Coordinate;
use ices_stats::sample::sample_indices;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What a Surveyor publishes: its identity, coordinate, and calibrated
/// filter parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyorInfo {
    /// Node id of the Surveyor.
    pub id: usize,
    /// The Surveyor's current coordinate (kept fresh as it re-embeds).
    pub coordinate: Coordinate,
    /// Parameters of the filter the Surveyor calibrated on its own clean
    /// embedding.
    pub params: StateSpaceParams,
}

/// The registrar all Surveyors register with.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SurveyorRegistry {
    surveyors: Vec<SurveyorInfo>,
}

impl SurveyorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a Surveyor (or update it if the id is already present).
    pub fn register(&mut self, info: SurveyorInfo) {
        info.params.validate();
        if let Some(existing) = self.surveyors.iter_mut().find(|s| s.id == info.id) {
            *existing = info;
        } else {
            self.surveyors.push(info);
        }
    }

    /// Number of registered Surveyors.
    pub fn len(&self) -> usize {
        self.surveyors.len()
    }

    /// Whether no Surveyor has registered yet.
    pub fn is_empty(&self) -> bool {
        self.surveyors.is_empty()
    }

    /// All registered Surveyors.
    pub fn all(&self) -> &[SurveyorInfo] {
        &self.surveyors
    }

    /// Look up a Surveyor by id.
    pub fn get(&self, id: usize) -> Option<&SurveyorInfo> {
        self.surveyors.iter().find(|s| s.id == id)
    }

    /// The join-time query: `k` randomly chosen Surveyors (fewer if the
    /// registry is smaller). The joining node then measures its RTT to
    /// each and adopts the closest one's filter.
    ///
    /// An empty registry yields an empty sample (and draws nothing from
    /// `rng`, so a later non-empty query sees an unperturbed stream) —
    /// callers must treat "no Surveyor available" as a deferred join,
    /// not an error.
    pub fn sample<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<&SurveyorInfo> {
        if self.surveyors.is_empty() {
            return Vec::new();
        }
        let take = k.min(self.surveyors.len());
        sample_indices(rng, self.surveyors.len(), take)
            .into_iter()
            .map(|i| &self.surveyors[i])
            .collect()
    }

    /// The refresh-time query: the Surveyor closest to `coord` in
    /// estimated (coordinate-space) distance.
    ///
    /// Returns `None` on an empty registry — a node refreshing while no
    /// Surveyor is registered must keep its stale filter rather than
    /// panic.
    pub fn closest_by_coordinate(&self, coord: &Coordinate) -> Option<&SurveyorInfo> {
        self.surveyors.iter().min_by(|a, b| {
            coord
                .distance(&a.coordinate)
                .total_cmp(&coord.distance(&b.coordinate))
        })
    }

    /// [`SurveyorRegistry::closest_by_coordinate`] restricted to
    /// Surveyors the caller can currently reach: `is_available` gates
    /// each candidate (typically on the network's churn schedule).
    ///
    /// Returns `None` when the registry is empty **or every Surveyor is
    /// down** — the all-Surveyors-down case, where the caller falls back
    /// to its stale-but-bounded calibration until one rejoins.
    pub fn closest_available_by_coordinate<F: Fn(&SurveyorInfo) -> bool>(
        &self,
        coord: &Coordinate,
        is_available: F,
    ) -> Option<&SurveyorInfo> {
        self.surveyors
            .iter()
            .filter(|s| is_available(s))
            .min_by(|a, b| {
                coord
                    .distance(&a.coordinate)
                    .total_cmp(&coord.distance(&b.coordinate))
            })
    }

    /// The Surveyor minimizing a caller-supplied cost (e.g. a *measured*
    /// RTT, which is how joining nodes pick their representative).
    pub fn closest_by<F: FnMut(&SurveyorInfo) -> f64>(
        &self,
        candidates: &[&SurveyorInfo],
        mut cost: F,
    ) -> Option<usize> {
        candidates
            .iter()
            .min_by(|a, b| cost(a).total_cmp(&cost(b)))
            .map(|s| s.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_coord::Space;
    use ices_stats::rng::stream_rng;

    fn info(id: usize, x: f64) -> SurveyorInfo {
        SurveyorInfo {
            id,
            coordinate: Coordinate::new(vec![x, 0.0], 0.0),
            params: StateSpaceParams::em_initial_guess(),
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = SurveyorRegistry::new();
        assert!(reg.is_empty());
        reg.register(info(7, 10.0));
        reg.register(info(9, 20.0));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(7).expect("exists").id, 7);
        assert!(reg.get(8).is_none());
    }

    #[test]
    fn register_updates_in_place() {
        let mut reg = SurveyorRegistry::new();
        reg.register(info(7, 10.0));
        reg.register(info(7, 99.0));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get(7).expect("exists").coordinate.position()[0], 99.0);
    }

    #[test]
    fn sample_returns_distinct_surveyors() {
        let mut reg = SurveyorRegistry::new();
        for i in 0..20 {
            reg.register(info(i, i as f64));
        }
        let mut rng = stream_rng(1, 0);
        let picked = reg.sample(8, &mut rng);
        assert_eq!(picked.len(), 8);
        let mut ids: Vec<usize> = picked.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn sample_caps_at_registry_size() {
        let mut reg = SurveyorRegistry::new();
        reg.register(info(1, 0.0));
        reg.register(info(2, 5.0));
        let mut rng = stream_rng(2, 0);
        assert_eq!(reg.sample(10, &mut rng).len(), 2);
    }

    #[test]
    fn closest_by_coordinate_picks_the_nearest() {
        let mut reg = SurveyorRegistry::new();
        reg.register(info(1, 0.0));
        reg.register(info(2, 50.0));
        reg.register(info(3, 200.0));
        let me = Coordinate::new(vec![60.0, 0.0], 0.0);
        assert_eq!(reg.closest_by_coordinate(&me).expect("non-empty").id, 2);
    }

    #[test]
    fn closest_by_cost_uses_measured_rtt() {
        let mut reg = SurveyorRegistry::new();
        reg.register(info(1, 0.0));
        reg.register(info(2, 50.0));
        let mut rng = stream_rng(3, 0);
        let candidates = reg.sample(2, &mut rng);
        // Pretend measured RTT says surveyor 1 is far, 2 near.
        let chosen = reg.closest_by(&candidates, |s| if s.id == 1 { 100.0 } else { 3.0 });
        assert_eq!(chosen, Some(2));
    }

    #[test]
    fn empty_registry_yields_nothing() {
        let reg = SurveyorRegistry::new();
        assert!(reg
            .closest_by_coordinate(&Coordinate::origin(Space::with_height(2)))
            .is_none());
        let mut rng = stream_rng(4, 0);
        assert!(reg.sample(3, &mut rng).is_empty());
        assert!(reg
            .closest_available_by_coordinate(&Coordinate::origin(Space::with_height(2)), |_| true)
            .is_none());
    }

    #[test]
    fn empty_sample_leaves_rng_untouched() {
        use rand::RngExt;
        let reg = SurveyorRegistry::new();
        let mut probed = stream_rng(5, 0);
        reg.sample(3, &mut probed);
        let mut fresh = stream_rng(5, 0);
        assert_eq!(
            probed.random::<u64>(),
            fresh.random::<u64>(),
            "an empty sample must not advance the caller's rng"
        );
    }

    #[test]
    fn availability_filter_skips_down_surveyors() {
        let mut reg = SurveyorRegistry::new();
        reg.register(info(1, 0.0));
        reg.register(info(2, 50.0));
        reg.register(info(3, 200.0));
        let me = Coordinate::new(vec![60.0, 0.0], 0.0);
        // Nearest (id 2) is down: the next-nearest live one is chosen.
        let chosen = reg.closest_available_by_coordinate(&me, |s| s.id != 2);
        assert_eq!(chosen.expect("live surveyor").id, 1);
    }

    #[test]
    fn all_surveyors_down_returns_none() {
        let mut reg = SurveyorRegistry::new();
        reg.register(info(1, 0.0));
        reg.register(info(2, 50.0));
        let me = Coordinate::new(vec![60.0, 0.0], 0.0);
        assert!(
            reg.closest_available_by_coordinate(&me, |_| false).is_none(),
            "a total Surveyor outage must surface as None, not a panic"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let mut reg = SurveyorRegistry::new();
        reg.register(info(4, 12.0));
        let json = serde_json::to_string(&reg).expect("serialize");
        let back: SurveyorRegistry = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(reg, back);
    }
}
