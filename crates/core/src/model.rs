//! The linear state-space model of nominal relative error.
//!
//! Paper §2: in the absence of malicious activity the nominal relative
//! error `Δ_n` of a node's embedding steps follows a first-order
//! autoregressive process, observed through gaussian measurement noise:
//!
//! ```text
//! Δ_{n+1} = β·Δ_n + W_n        W_n ~ N(w̄, v_W)   (system evolution)
//! D_n     = Δ_n + U_n          U_n ~ N(0,  v_U)   (observation)
//! Δ_0     ~ N(w₀, p₀)                             (initial state)
//! ```
//!
//! `β < 1` guarantees the nominal error converges to a stationary regime;
//! the nonzero system-noise mean `w̄` absorbs the slow drift observed in
//! deployed coordinate systems.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An invalid [`StateSpaceParams`] component (first violation found by
/// [`StateSpaceParams::check`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelError {
    /// `|β| ≥ 1` (or non-finite): the error process would not be
    /// stationary.
    NonStationaryBeta(f64),
    /// A variance component (`v_w`, `v_u`, `p0`) is non-positive or
    /// non-finite.
    NonPositiveVariance(&'static str, f64),
    /// A mean component (`w_bar`, `w0`) is non-finite.
    NonFinite(&'static str, f64),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonStationaryBeta(b) => {
                write!(f, "beta must satisfy |beta| < 1 for stationarity, got {b}")
            }
            ModelError::NonPositiveVariance(name, v) => {
                write!(f, "{name} must be positive, got {v}")
            }
            ModelError::NonFinite(name, v) => write!(f, "{name} must be finite, got {v}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// The parameter vector `θ = (β, v_W, v_U, w̄, w₀, p₀)` of the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateSpaceParams {
    /// AR coefficient `β` of the nominal error process (strictly below 1
    /// for stationarity).
    pub beta: f64,
    /// Variance `v_W` of the system noise.
    pub v_w: f64,
    /// Variance `v_U` of the observation noise.
    pub v_u: f64,
    /// Mean `w̄` of the system noise (captures coordinate drift).
    pub w_bar: f64,
    /// Mean `w₀` of the initial state.
    pub w0: f64,
    /// Variance `p₀` of the initial state.
    pub p0: f64,
}

impl StateSpaceParams {
    /// A sane starting point for EM calibration: a slowly mixing process
    /// with moderate noise, initialized at a typical early relative error.
    pub fn em_initial_guess() -> Self {
        Self {
            beta: 0.7,
            v_w: 0.01,
            v_u: 0.01,
            w_bar: 0.05,
            w0: 0.5,
            p0: 0.25,
        }
    }

    /// Validate model invariants, reporting the first violated one.
    pub fn check(&self) -> Result<(), ModelError> {
        if !(self.beta.is_finite() && self.beta.abs() < 1.0) {
            return Err(ModelError::NonStationaryBeta(self.beta));
        }
        if !(self.v_w.is_finite() && self.v_w > 0.0) {
            return Err(ModelError::NonPositiveVariance("v_w", self.v_w));
        }
        if !(self.v_u.is_finite() && self.v_u > 0.0) {
            return Err(ModelError::NonPositiveVariance("v_u", self.v_u));
        }
        if !self.w_bar.is_finite() {
            return Err(ModelError::NonFinite("w_bar", self.w_bar));
        }
        if !self.w0.is_finite() {
            return Err(ModelError::NonFinite("w0", self.w0));
        }
        if !(self.p0.is_finite() && self.p0 > 0.0) {
            return Err(ModelError::NonPositiveVariance("p0", self.p0));
        }
        Ok(())
    }

    /// [`StateSpaceParams::check`] for contexts that cannot propagate the
    /// error (long-standing public API; EM always produces valid params).
    ///
    /// # Panics
    /// Panics with the [`ModelError`] message on invalid parameters.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Stationary mean of the nominal error process:
    /// `E[Δ_∞] = w̄ / (1 − β)`.
    pub fn stationary_mean(&self) -> f64 {
        self.w_bar / (1.0 - self.beta)
    }

    /// Stationary variance of the nominal error process:
    /// `Var[Δ_∞] = v_W / (1 − β²)`.
    pub fn stationary_variance(&self) -> f64 {
        self.v_w / (1.0 - self.beta * self.beta)
    }

    /// Largest absolute component-wise difference to another parameter
    /// vector — the quantity the paper's EM convergence test bounds
    /// ("the variations of all the θ components become smaller than
    /// 0.02").
    pub fn max_delta(&self, other: &StateSpaceParams) -> f64 {
        [
            (self.beta - other.beta).abs(),
            (self.v_w - other.v_w).abs(),
            (self.v_u - other.v_u).abs(),
            (self.w_bar - other.w_bar).abs(),
            (self.w0 - other.w0).abs(),
            (self.p0 - other.p0).abs(),
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }

    /// Simulate a clean trace of measured relative errors from this
    /// model — the ground truth generator used by the calibration and
    /// filter tests.
    pub fn simulate<R: rand::Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        self.validate();
        let mut delta = ices_stats::sample::normal(rng, self.w0, self.p0.sqrt());
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let d = delta + ices_stats::sample::normal(rng, 0.0, self.v_u.sqrt());
            out.push(d);
            delta =
                self.beta * delta + ices_stats::sample::normal(rng, self.w_bar, self.v_w.sqrt());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_stats::rng::stream_rng;
    use ices_stats::OnlineStats;

    fn params() -> StateSpaceParams {
        StateSpaceParams {
            beta: 0.8,
            v_w: 0.004,
            v_u: 0.002,
            w_bar: 0.02,
            w0: 0.5,
            p0: 0.1,
        }
    }

    #[test]
    fn validate_accepts_sane_params() {
        params().validate();
        StateSpaceParams::em_initial_guess().validate();
    }

    #[test]
    #[should_panic(expected = "|beta| < 1")]
    fn validate_rejects_nonstationary_beta() {
        let mut p = params();
        p.beta = 1.0;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "v_u must be positive")]
    fn validate_rejects_zero_observation_noise() {
        let mut p = params();
        p.v_u = 0.0;
        p.validate();
    }

    #[test]
    fn stationary_moments() {
        let p = params();
        assert!((p.stationary_mean() - 0.02 / 0.2).abs() < 1e-12);
        assert!((p.stationary_variance() - 0.004 / (1.0 - 0.64)).abs() < 1e-12);
    }

    #[test]
    fn simulate_converges_to_stationary_moments() {
        let p = params();
        let mut rng = stream_rng(3, 0);
        let trace = p.simulate(200_000, &mut rng);
        // Skip burn-in, then compare to theory. Observed variance is the
        // state variance plus v_U.
        let mut s = OnlineStats::new();
        for &d in &trace[1000..] {
            s.push(d);
        }
        assert!(
            (s.mean() - p.stationary_mean()).abs() < 0.01,
            "mean {} vs {}",
            s.mean(),
            p.stationary_mean()
        );
        let want_var = p.stationary_variance() + p.v_u;
        assert!(
            (s.variance() - want_var).abs() / want_var < 0.05,
            "var {} vs {}",
            s.variance(),
            want_var
        );
    }

    #[test]
    fn max_delta_is_componentwise_max() {
        let a = params();
        let mut b = a;
        b.beta += 0.5;
        b.v_u += 0.1;
        assert!((a.max_delta(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.max_delta(&a.clone()), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = params();
        let json = serde_json::to_string(&p).expect("serialize");
        let back: StateSpaceParams = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(p, back);
    }
}
