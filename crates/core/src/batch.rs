//! Batched SoA detection kernel.
//!
//! The paper's detector is a *scalar* Kalman innovation test, but a node
//! (or a whole simulated population) runs one independent filter per
//! peer — an embarrassingly data-parallel sweep. [`DetectorBank`]
//! flattens a set of [`Detector`]s into structure-of-arrays columns
//! (`estimate`, `variance`, band/coast run counters) and exposes the
//! four sweep kernels `predict_all` / `evaluate_all` / `accept_all` /
//! `coast_all`, each one flat pass over `&[f64]` replacing N individual
//! `Detector` calls.
//!
//! # Exact-tier contract
//!
//! In the default (exact) tier every kernel performs **bit-for-bit the
//! same f64 operations, in the same per-slot order**, as the scalar
//! [`Detector`]/[`KalmanFilter`] methods it replaces:
//!
//! * `predict_all` is [`KalmanFilter::predict`] per slot;
//! * `evaluate_all` is [`Detector::evaluate`] with the slot's
//!   `Q⁻¹(α/2)` factor **cached** — `q_inverse` is a pure function, so
//!   memoizing it per slot (and per distinct `α` at gather time) yields
//!   the identical product `√v_η · Q⁻¹(α/2)` while skipping the
//!   dominant cost of the scalar path, which re-derives the quantile on
//!   every single evaluation;
//! * `accept_all` is [`KalmanFilter::update`] (gain, posterior,
//!   recalibration-band bookkeeping — same expressions, same order);
//! * `coast_all` is [`KalmanFilter::time_update`] plus the starvation
//!   streak of [`Detector::coast`].
//!
//! The bank is a **transient execution engine**, not a second store of
//! truth: callers gather detectors with [`DetectorBank::push`], run
//! sweeps, and scatter the state back with [`DetectorBank::store`]. The
//! scalar `Detector` inside each `SecureNode` remains the single
//! serialized, API-visible state.
//!
//! # The fast tier
//!
//! With `ICES_FAST=1` (see `ices_par::fast_enabled`) the evaluation
//! sweep dispatches to [`fast`], which reorders the threshold
//! comparison (squared form, fused normalize). Fast-tier outputs are
//! deterministic *per tier* but not bit-identical to the exact tier;
//! they carry their own golden fingerprints and a statistical
//! equivalence gate (see DESIGN.md §14).

use crate::detector::{Detector, Verdict, SAMPLE_STARVATION_LIMIT};
use crate::kalman::{RECALIBRATION_BAND, RECALIBRATION_STREAK};
use crate::model::StateSpaceParams;
use ices_stats::q_inverse;

pub mod fast;

/// A set of per-peer detectors flattened into SoA columns.
///
/// See the module docs for the exact-tier contract. Typical round trip:
///
/// ```
/// use ices_core::batch::DetectorBank;
/// use ices_core::{Detector, StateSpaceParams};
///
/// let params = StateSpaceParams::em_initial_guess();
/// let mut detectors = vec![Detector::new(params, 0.05); 3];
/// let mut bank = DetectorBank::new();
/// for d in &detectors {
///     bank.push(d);
/// }
/// bank.predict_all();
/// let verdicts = bank.evaluate_all(&[0.4, 0.5, 9.0], &[true, true, true]);
/// let accept: Vec<bool> = verdicts
///     .iter()
///     .map(|v| v.map(|v| !v.suspicious).unwrap_or(false))
///     .collect();
/// bank.accept_all(&[0.4, 0.5, 9.0], &accept);
/// for (slot, d) in detectors.iter_mut().enumerate() {
///     bank.store(slot, d);
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DetectorBank {
    // Calibrated parameter columns (hot in every sweep).
    beta: Vec<f64>,
    w_bar: Vec<f64>,
    v_w: Vec<f64>,
    v_u: Vec<f64>,
    /// Full parameter vectors, for recalibration and scatter.
    params: Vec<StateSpaceParams>,
    /// Per-slot significance level and its cached `Q⁻¹(α/2)`.
    alpha: Vec<f64>,
    q_half_alpha: Vec<f64>,
    // Filter state columns.
    estimate: Vec<f64>,
    variance: Vec<f64>,
    updates: Vec<u64>,
    outside_streak: Vec<u32>,
    starvation_streak: Vec<u32>,
    // Prediction scratch (filled by `predict_all`).
    predicted: Vec<f64>,
    state_var: Vec<f64>,
    innov_var: Vec<f64>,
    /// Slots whose state changed since the last `predict_all` (their
    /// scratch entries are stale; touching one again is a caller bug).
    dirty: Vec<bool>,
    /// Whether `predict_all` has run since the last state change.
    predicted_fresh: bool,
    /// One-entry `q_inverse(α/2)` memo: every push with the same `α`
    /// (the common case — one protocol-wide significance level) reuses
    /// the cached quantile. `q_inverse` is pure, so this is invisible
    /// to the numbers.
    memo_alpha_bits: u64,
    memo_q: f64,
    /// Numeric tier, resolved once at construction (or pinned by
    /// [`DetectorBank::with_tier`]).
    fast: bool,
}

impl DetectorBank {
    /// An empty bank on the ambient numeric tier
    /// (`ices_par::fast_enabled()`, resolved once here — not per sweep).
    pub fn new() -> Self {
        // audit:allow(FAST01): the one sanctioned tier-resolution point; the reassociated kernels themselves live in batch/fast.rs
        Self::with_tier(ices_par::fast_enabled())
    }

    /// An empty bank with the numeric tier pinned explicitly (tests,
    /// the equivalence gate).
    pub fn with_tier(fast: bool) -> Self {
        Self {
            memo_alpha_bits: f64::NAN.to_bits(),
            memo_q: f64::NAN,
            fast,
            ..Self::default()
        }
    }

    /// Whether this bank evaluates on the fast (reassociated) tier.
    pub fn is_fast(&self) -> bool {
        self.fast
    }

    /// Number of gathered slots.
    pub fn len(&self) -> usize {
        self.estimate.len()
    }

    /// Whether the bank holds no slots.
    pub fn is_empty(&self) -> bool {
        self.estimate.is_empty()
    }

    /// Drop all slots, keeping allocations and the quantile memo.
    pub fn clear(&mut self) {
        self.beta.clear();
        self.w_bar.clear();
        self.v_w.clear();
        self.v_u.clear();
        self.params.clear();
        self.alpha.clear();
        self.q_half_alpha.clear();
        self.estimate.clear();
        self.variance.clear();
        self.updates.clear();
        self.outside_streak.clear();
        self.starvation_streak.clear();
        self.predicted.clear();
        self.state_var.clear();
        self.innov_var.clear();
        self.dirty.clear();
        self.predicted_fresh = false;
    }

    fn q_for(&mut self, alpha: f64) -> f64 {
        if alpha.to_bits() != self.memo_alpha_bits {
            self.memo_alpha_bits = alpha.to_bits();
            self.memo_q = q_inverse(alpha / 2.0);
        }
        self.memo_q
    }

    /// Gather one detector into the bank, returning its slot index.
    pub fn push(&mut self, det: &Detector) -> usize {
        let slot = self.len();
        let p = *det.filter().params();
        let (estimate, variance, updates, outside_streak) = det.filter().raw_state();
        self.beta.push(p.beta);
        self.w_bar.push(p.w_bar);
        self.v_w.push(p.v_w);
        self.v_u.push(p.v_u);
        self.params.push(p);
        let alpha = det.alpha();
        self.alpha.push(alpha);
        let q = self.q_for(alpha);
        self.q_half_alpha.push(q);
        self.estimate.push(estimate);
        self.variance.push(variance);
        self.updates.push(updates);
        self.outside_streak.push(outside_streak);
        self.starvation_streak.push(det.starvation_streak());
        self.predicted.push(0.0);
        self.state_var.push(0.0);
        self.innov_var.push(0.0);
        self.dirty.push(false);
        self.predicted_fresh = false;
        slot
    }

    /// One-step-ahead prediction for every slot, in one flat sweep —
    /// [`KalmanFilter::predict`] columnized. Must run before
    /// `evaluate_all` / `accept_all` / `coast_all`, and again after any
    /// slot's state changes.
    pub fn predict_all(&mut self) {
        let n = self.len();
        for i in 0..n {
            let predicted = self.beta[i] * self.estimate[i] + self.w_bar[i];
            let state_var = self.beta[i] * self.beta[i] * self.variance[i] + self.v_w[i];
            self.predicted[i] = predicted;
            self.state_var[i] = state_var;
            self.innov_var[i] = state_var + self.v_u[i];
        }
        for d in self.dirty.iter_mut() {
            *d = false;
        }
        self.predicted_fresh = true;
    }

    fn assert_fresh(&self, kernel: &str) {
        assert!(
            self.predicted_fresh,
            "DetectorBank::{kernel} requires predict_all() since the last state change"
        );
    }

    fn assert_aligned(&self, kernel: &str, len: usize) {
        assert!(
            len == self.len(),
            "DetectorBank::{kernel}: argument length {len} != {} slots",
            self.len()
        );
    }

    /// Evaluate one observation per active slot — [`Detector::evaluate`]
    /// columnized, with the per-slot `Q⁻¹(α/2)` factor cached. Inactive
    /// slots get `None` and their observation value is ignored. Does not
    /// change any state.
    ///
    /// # Panics
    /// Panics if `predict_all` has not been (re-)run, on length
    /// mismatches, or on a non-finite observation for an active slot
    /// (same contract as the scalar path).
    pub fn evaluate_all(&self, observations: &[f64], active: &[bool]) -> Vec<Option<Verdict>> {
        self.assert_fresh("evaluate_all");
        self.assert_aligned("evaluate_all", observations.len());
        self.assert_aligned("evaluate_all", active.len());
        if self.fast {
            return fast::evaluate_sweep(self, observations, active);
        }
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            if !active[i] {
                out.push(None);
                continue;
            }
            debug_assert!(!self.dirty[i], "slot {i} touched since predict_all");
            let observation = observations[i];
            assert!(
                observation.is_finite(),
                "observation must be finite, got {observation}"
            );
            let innovation = observation - self.predicted[i];
            let threshold = self.innov_var[i].sqrt() * self.q_half_alpha[i];
            out.push(Some(Verdict {
                suspicious: innovation.abs() >= threshold,
                innovation,
                threshold,
                predicted: self.predicted[i],
                innovation_variance: self.innov_var[i],
            }));
        }
        out
    }

    /// Incorporate one observation per masked slot — the
    /// measurement-update of [`KalmanFilter::update`] plus the streak
    /// bookkeeping of [`Detector::accept`], columnized. Reuses the
    /// predictions from `predict_all` (the state is unchanged since, so
    /// the scalar path's internal re-prediction would produce the same
    /// bits).
    ///
    /// # Panics
    /// Panics if `predict_all` has not been (re-)run, on length
    /// mismatches, or on a non-finite observation for a masked slot.
    pub fn accept_all(&mut self, observations: &[f64], mask: &[bool]) {
        self.assert_fresh("accept_all");
        self.assert_aligned("accept_all", observations.len());
        self.assert_aligned("accept_all", mask.len());
        for i in 0..self.len() {
            if !mask[i] {
                continue;
            }
            debug_assert!(!self.dirty[i], "slot {i} touched twice since predict_all");
            self.dirty[i] = true;
            let observation = observations[i];
            assert!(
                observation.is_finite(),
                "observation must be finite, got {observation}"
            );
            let innovation = observation - self.predicted[i];
            let gain = self.state_var[i] / (self.state_var[i] + self.v_u[i]);
            self.estimate[i] = self.predicted[i] + gain * innovation;
            self.variance[i] = self.v_u[i] * self.state_var[i] / (self.state_var[i] + self.v_u[i]);
            debug_assert!(
                self.variance[i].is_finite() && self.variance[i] >= 0.0,
                "posterior variance must stay finite and non-negative, got {}",
                self.variance[i]
            );
            self.updates[i] += 1;
            let band = RECALIBRATION_BAND * self.innov_var[i].sqrt();
            if innovation.abs() > band {
                self.outside_streak[i] += 1;
            } else {
                self.outside_streak[i] = 0;
            }
            self.starvation_streak[i] = 0;
        }
    }

    /// Absorb a missing measurement per masked slot —
    /// [`KalmanFilter::time_update`] plus the starvation streak of
    /// [`Detector::coast`], columnized.
    ///
    /// # Panics
    /// Panics if `predict_all` has not been (re-)run or on a length
    /// mismatch.
    pub fn coast_all(&mut self, mask: &[bool]) {
        self.assert_fresh("coast_all");
        self.assert_aligned("coast_all", mask.len());
        for (i, &masked) in mask.iter().enumerate() {
            if !masked {
                continue;
            }
            debug_assert!(!self.dirty[i], "slot {i} touched twice since predict_all");
            self.dirty[i] = true;
            self.estimate[i] = self.predicted[i];
            self.variance[i] = self.state_var[i];
            debug_assert!(
                self.variance[i].is_finite() && self.variance[i] >= 0.0,
                "coasting variance must stay finite and non-negative, got {}",
                self.variance[i]
            );
            self.starvation_streak[i] = self.starvation_streak[i].saturating_add(1);
        }
    }

    /// The threshold `t_n` at an arbitrary significance level for one
    /// slot, from the current prediction scratch — the bank's
    /// [`Detector::threshold_at`] (the reprieve retest). Bit-identical:
    /// the slot's state is unchanged since `predict_all`, so the scalar
    /// path's internal re-prediction yields the same `v_η`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1)`, if `predict_all` has not
    /// been (re-)run, or if the slot's state already changed.
    pub fn threshold_at(&self, slot: usize, alpha: f64) -> f64 {
        self.assert_fresh("threshold_at");
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "significance level must be in (0, 1), got {alpha}"
        );
        assert!(
            !self.dirty[slot],
            "DetectorBank::threshold_at: slot {slot} changed since predict_all"
        );
        self.innov_var[slot].sqrt() * q_inverse(alpha / 2.0)
    }

    /// Whether a slot is sample-starved (see [`Detector::starved`]).
    pub fn starved(&self, slot: usize) -> bool {
        self.starvation_streak[slot] >= SAMPLE_STARVATION_LIMIT
    }

    /// Whether a slot has hit the recalibration condition
    /// (see [`Detector::needs_recalibration`]).
    pub fn needs_recalibration(&self, slot: usize) -> bool {
        self.outside_streak[slot] >= RECALIBRATION_STREAK || self.starved(slot)
    }

    /// Install fresh parameters for one slot — [`Detector::recalibrate`]
    /// columnized. The slot's significance level (and cached quantile)
    /// is unchanged, exactly like the scalar path.
    ///
    /// # Panics
    /// Panics if the parameters violate a model invariant.
    pub fn recalibrate(&mut self, slot: usize, params: StateSpaceParams) {
        if let Err(e) = params.check() {
            panic!("{e}");
        }
        self.beta[slot] = params.beta;
        self.w_bar[slot] = params.w_bar;
        self.v_w[slot] = params.v_w;
        self.v_u[slot] = params.v_u;
        self.params[slot] = params;
        self.estimate[slot] = params.w0;
        self.variance[slot] = params.p0;
        self.updates[slot] = 0;
        self.outside_streak[slot] = 0;
        self.starvation_streak[slot] = 0;
        self.dirty[slot] = true;
        self.predicted_fresh = false;
    }

    /// Scatter one slot's state back into a detector. The bank ran the
    /// exact recursions, so the values written are bit-for-bit what the
    /// scalar call sequence would have left behind.
    pub fn store(&self, slot: usize, det: &mut Detector) {
        // Reinstall parameters first (recalibrate resets state), then
        // overwrite the state columns; covers both the plain and the
        // mid-sequence-recalibrated case.
        det.filter_mut().recalibrate(self.params[slot]);
        det.filter_mut().set_raw_state(
            self.estimate[slot],
            self.variance[slot],
            self.updates[slot],
            self.outside_streak[slot],
        );
        det.set_starvation_streak(self.starvation_streak[slot]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_stats::rng::stream_rng;

    fn params() -> StateSpaceParams {
        StateSpaceParams {
            beta: 0.85,
            v_w: 0.003,
            v_u: 0.002,
            w_bar: 0.015,
            w0: 0.3,
            p0: 0.02,
        }
    }

    /// Drive N scalar detectors and one bank through the same
    /// accept/coast schedule and require bit-identical state throughout.
    #[test]
    fn bank_matches_scalar_detectors_bitwise() {
        let p = params();
        let n = 8;
        let mut scalars: Vec<Detector> = (0..n).map(|_| Detector::new(p, 0.05)).collect();
        let mut bank = DetectorBank::with_tier(false);
        for d in &scalars {
            bank.push(d);
        }
        let mut rng = stream_rng(40, 0);
        let traces: Vec<Vec<f64>> = (0..n).map(|_| p.simulate(50, &mut rng)).collect();
        for step in 0..50 {
            let obs: Vec<f64> = traces.iter().map(|t| t[step]).collect();
            // Slot i coasts on steps where (step + i) % 5 == 0.
            let coast: Vec<bool> = (0..n).map(|i| (step + i) % 5 == 0).collect();
            let sample: Vec<bool> = coast.iter().map(|&c| !c).collect();
            bank.predict_all();
            let verdicts = bank.evaluate_all(&obs, &sample);
            let mut accept = vec![false; n];
            for i in 0..n {
                let scalar_verdict = scalars[i].evaluate(obs[i]);
                if coast[i] {
                    scalars[i].coast();
                    continue;
                }
                let v = verdicts[i].expect("active slot has a verdict");
                assert_eq!(v.innovation.to_bits(), scalar_verdict.innovation.to_bits());
                assert_eq!(v.threshold.to_bits(), scalar_verdict.threshold.to_bits());
                assert_eq!(v.suspicious, scalar_verdict.suspicious);
                if !v.suspicious {
                    accept[i] = true;
                    scalars[i].accept(obs[i]);
                }
            }
            bank.accept_all(&obs, &accept);
            bank.coast_all(&coast);
        }
        for (i, scalar) in scalars.iter_mut().enumerate() {
            let mut out = Detector::new(p, 0.05);
            bank.store(i, &mut out);
            assert_eq!(&out, scalar, "slot {i} diverged");
        }
    }

    #[test]
    fn threshold_at_matches_scalar_reprieve_path() {
        let p = params();
        let mut scalar = Detector::new(p, 0.05);
        for obs in [0.31, 0.27, 0.4] {
            scalar.accept(obs);
        }
        let mut bank = DetectorBank::with_tier(false);
        bank.push(&scalar);
        bank.predict_all();
        for alpha2 in [1e-9, 0.0005, 0.025, 0.3] {
            assert_eq!(
                bank.threshold_at(0, alpha2).to_bits(),
                scalar.threshold_at(alpha2).to_bits()
            );
        }
    }

    #[test]
    fn recalibrate_matches_scalar_and_store_roundtrips() {
        let p = params();
        let mut scalar = Detector::new(p, 0.05);
        let mut bank = DetectorBank::with_tier(false);
        bank.push(&scalar);
        // Accumulate some streaks, then recalibrate both sides.
        bank.predict_all();
        bank.accept_all(&[5.0], &[true]);
        scalar.accept(5.0);
        let mut fresh = p;
        fresh.w0 = 0.45;
        bank.recalibrate(0, fresh);
        scalar.recalibrate(fresh);
        bank.predict_all();
        bank.coast_all(&[true]);
        scalar.coast();
        let mut out = Detector::new(p, 0.05);
        bank.store(0, &mut out);
        assert_eq!(out, scalar);
        assert_eq!(out.filter().params(), &fresh);
    }

    #[test]
    fn starvation_and_recalibration_signals_match_scalar() {
        let p = params();
        let mut scalar = Detector::new(p, 0.05);
        let mut bank = DetectorBank::with_tier(false);
        bank.push(&scalar);
        for _ in 0..SAMPLE_STARVATION_LIMIT {
            bank.predict_all();
            bank.coast_all(&[true]);
            scalar.coast();
        }
        assert!(bank.starved(0));
        assert!(bank.needs_recalibration(0));
        assert_eq!(bank.starved(0), scalar.starved());
        assert_eq!(bank.needs_recalibration(0), scalar.needs_recalibration());
    }

    #[test]
    fn clear_keeps_capacity_and_quantile_memo() {
        let p = params();
        let d = Detector::new(p, 0.05);
        let mut bank = DetectorBank::with_tier(false);
        bank.push(&d);
        let q = bank.q_half_alpha[0];
        bank.clear();
        assert!(bank.is_empty());
        bank.push(&d);
        assert_eq!(bank.q_half_alpha[0].to_bits(), q.to_bits());
        assert_eq!(
            q.to_bits(),
            q_inverse(0.025).to_bits(),
            "memo must stay a pure q_inverse value"
        );
    }

    #[test]
    #[should_panic(expected = "requires predict_all")]
    fn evaluate_without_predict_panics() {
        let d = Detector::new(params(), 0.05);
        let mut bank = DetectorBank::with_tier(false);
        bank.push(&d);
        let _ = bank.evaluate_all(&[0.3], &[true]);
    }

    #[test]
    #[should_panic(expected = "observation must be finite")]
    fn evaluate_rejects_non_finite_active_observation() {
        let d = Detector::new(params(), 0.05);
        let mut bank = DetectorBank::with_tier(false);
        bank.push(&d);
        bank.predict_all();
        let _ = bank.evaluate_all(&[f64::NAN], &[true]);
    }

    mod interleavings {
        use super::*;
        use proptest::prelude::*;

        /// One step of the randomized schedule for one slot.
        #[derive(Debug, Clone, Copy)]
        enum Op {
            /// Evaluate an observation and accept it if not suspicious
            /// (the protocol's accept path).
            Sample(f64),
            /// Coast (missing probe).
            Missing,
            /// Recalibrate with a shifted `w0`.
            Recalibrate(f64),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            (0u8..10, -1.0f64..4.0).prop_map(|(kind, x)| match kind {
                0 | 1 => Op::Missing,
                2 => Op::Recalibrate(0.05 + (x + 1.0) * 0.1),
                _ => Op::Sample(x),
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Satellite: over random sample/missing/recalibrate
            /// interleavings, the bank leaves every detector bit-for-bit
            /// (`to_bits`) where the scalar call sequence leaves it.
            #[test]
            fn bank_is_bit_identical_over_random_interleavings(
                schedule in proptest::collection::vec(
                    proptest::collection::vec(op_strategy(), 1..40), 1..7),
            ) {
                let p = params();
                let n = schedule.len();
                let steps = schedule.iter().map(Vec::len).max().unwrap_or(0);
                let mut scalars: Vec<Detector> =
                    (0..n).map(|_| Detector::new(p, 0.05)).collect();
                let mut bank = DetectorBank::with_tier(false);
                for d in &scalars {
                    bank.push(d);
                }
                for step in 0..steps {
                    // Recalibrations happen between sweeps, as in the
                    // protocol (end_round → refresh_filter).
                    for i in 0..n {
                        if let Some(Op::Recalibrate(w0)) = schedule[i].get(step) {
                            let mut fresh = p;
                            fresh.w0 = *w0;
                            bank.recalibrate(i, fresh);
                            scalars[i].recalibrate(fresh);
                        }
                    }
                    let mut obs = vec![0.0f64; n];
                    let mut active = vec![false; n];
                    let mut coast = vec![false; n];
                    for i in 0..n {
                        match schedule[i].get(step) {
                            Some(Op::Sample(x)) => {
                                obs[i] = *x;
                                active[i] = true;
                            }
                            Some(Op::Missing) => coast[i] = true,
                            _ => {}
                        }
                    }
                    bank.predict_all();
                    let verdicts = bank.evaluate_all(&obs, &active);
                    let mut accept = vec![false; n];
                    for i in 0..n {
                        if !active[i] {
                            continue;
                        }
                        let scalar_verdict = scalars[i].evaluate(obs[i]);
                        let v = verdicts[i].expect("active slot");
                        prop_assert_eq!(
                            v.innovation.to_bits(),
                            scalar_verdict.innovation.to_bits()
                        );
                        prop_assert_eq!(
                            v.threshold.to_bits(),
                            scalar_verdict.threshold.to_bits()
                        );
                        prop_assert_eq!(v.suspicious, scalar_verdict.suspicious);
                        if !v.suspicious {
                            accept[i] = true;
                            scalars[i].accept(obs[i]);
                        }
                    }
                    for i in 0..n {
                        if coast[i] {
                            scalars[i].coast();
                        }
                    }
                    bank.accept_all(&obs, &accept);
                    bank.coast_all(&coast);
                }
                for (i, scalar) in scalars.iter().enumerate() {
                    let mut out = Detector::new(p, 0.05);
                    bank.store(i, &mut out);
                    prop_assert_eq!(&out, scalar, "slot {} diverged", i);
                }
            }
        }
    }

    #[test]
    fn inactive_slots_ignore_their_observation_value() {
        let d = Detector::new(params(), 0.05);
        let mut bank = DetectorBank::with_tier(false);
        bank.push(&d);
        bank.push(&d);
        bank.predict_all();
        let verdicts = bank.evaluate_all(&[f64::NAN, 0.3], &[false, true]);
        assert!(verdicts[0].is_none());
        assert!(verdicts[1].is_some());
    }
}
