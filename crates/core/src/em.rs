//! EM calibration of the state-space parameters (§2.2 of the paper).
//!
//! Calibration runs over a trace of measured relative errors collected in
//! a stationary, cheater-free period and maximizes the likelihood of the
//! linear state-space model by Expectation–Maximization (following the
//! Ghahramani–Hinton derivation the paper cites):
//!
//! * **E-step** — with parameters fixed, compute the smoothed state
//!   moments `δ̂_i = E[Δ_i|D₀ᴺ]`, `π̂_i = E[Δ_i²|D₀ᴺ]` and
//!   `π̂_{i,i−1} = E[Δ_i·Δ_{i−1}|D₀ᴺ]` with a forward Kalman pass, a
//!   backward Rauch–Tung–Striebel smoother, and the lag-one covariance
//!   recursion.
//! * **M-step** — update `θ` with the paper's closed forms; `β` and `w̄`
//!   are coupled through two linear equations and are solved jointly.
//!
//! Iteration stops when every component of `θ` moves less than the
//! paper's 0.02 (configurable), or at an iteration cap.

use crate::model::StateSpaceParams;
use serde::{Deserialize, Serialize};

/// EM driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmConfig {
    /// Stop when all θ components move less than this between iterations
    /// (the paper uses 0.02).
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Variances are clamped at this floor to keep the filter proper.
    pub variance_floor: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            tolerance: 0.02,
            max_iterations: 200,
            variance_floor: 1e-8,
        }
    }
}

/// Result of an EM calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationOutcome {
    /// The calibrated parameters.
    pub params: StateSpaceParams,
    /// EM iterations executed.
    pub iterations: usize,
    /// Whether the θ-delta tolerance was met (vs hitting the cap).
    pub converged: bool,
    /// Per-iteration observed-data log-likelihood (should be
    /// non-decreasing up to numerical noise).
    pub log_likelihood: Vec<f64>,
}

/// Smoothed moments from one E-step.
struct Smoothed {
    /// `δ̂_i = E[Δ_i | D₀ᴺ]`.
    mean: Vec<f64>,
    /// `Var[Δ_i | D₀ᴺ]`.
    var: Vec<f64>,
    /// `Cov[Δ_i, Δ_{i−1} | D₀ᴺ]`, indexed by `i ∈ 1..=N` at `i − 1`.
    lag_cov: Vec<f64>,
    /// Observed-data log-likelihood of this pass.
    log_likelihood: f64,
}

/// One forward-backward pass (E-step) under fixed parameters.
fn e_step(params: &StateSpaceParams, observations: &[f64]) -> Smoothed {
    let n = observations.len();
    debug_assert!(n >= 2);
    let (beta, v_w, v_u, w_bar) = (params.beta, params.v_w, params.v_u, params.w_bar);

    // Forward Kalman pass.
    let mut pred_mean = vec![0.0; n];
    let mut pred_var = vec![0.0; n];
    let mut filt_mean = vec![0.0; n];
    let mut filt_var = vec![0.0; n];
    let mut log_likelihood = 0.0;
    for i in 0..n {
        let (pm, pv) = if i == 0 {
            (params.w0, params.p0)
        } else {
            (
                beta * filt_mean[i - 1] + w_bar,
                beta * beta * filt_var[i - 1] + v_w,
            )
        };
        pred_mean[i] = pm;
        pred_var[i] = pv;
        let s = pv + v_u; // innovation variance
        let innovation = observations[i] - pm;
        let gain = pv / s;
        filt_mean[i] = pm + gain * innovation;
        filt_var[i] = v_u * pv / s;
        log_likelihood +=
            -0.5 * ((2.0 * std::f64::consts::PI * s).ln() + innovation * innovation / s);
    }

    // Backward RTS smoother.
    let mut mean = filt_mean.clone();
    let mut var = filt_var.clone();
    let mut smoother_gain = vec![0.0; n - 1];
    for i in (0..n - 1).rev() {
        let j = filt_var[i] * beta / pred_var[i + 1];
        smoother_gain[i] = j;
        mean[i] = filt_mean[i] + j * (mean[i + 1] - pred_mean[i + 1]);
        var[i] = filt_var[i] + j.powi(2) * (var[i + 1] - pred_var[i + 1]);
    }

    // Lag-one covariance smoother (Shumway–Stoffer Property 6.3).
    let mut lag_cov = vec![0.0; n - 1];
    let last_gain = pred_var[n - 1] / (pred_var[n - 1] + v_u);
    lag_cov[n - 2] = (1.0 - last_gain) * beta * filt_var[n - 2];
    for i in (1..n - 1).rev() {
        lag_cov[i - 1] = filt_var[i] * smoother_gain[i - 1]
            + smoother_gain[i] * (lag_cov[i] - beta * filt_var[i]) * smoother_gain[i - 1];
    }

    Smoothed {
        mean,
        var,
        lag_cov,
        log_likelihood,
    }
}

/// Maximization step: the paper's closed-form updates.
fn m_step(observations: &[f64], sm: &Smoothed, config: &EmConfig) -> StateSpaceParams {
    let n = observations.len();
    let n_trans = (n - 1) as f64; // transitions i = 1..N

    // Sufficient statistics.
    let delta = &sm.mean;
    let pi: Vec<f64> = sm
        .mean
        .iter()
        .zip(&sm.var)
        .map(|(m, v)| v + m * m)
        .collect();
    let pi_lag: Vec<f64> = (1..n)
        .map(|i| sm.lag_cov[i - 1] + delta[i] * delta[i - 1])
        .collect();

    // Initial state.
    // audit:allow(PANIC02): public entry asserts >= 10 observations
    let w0 = delta[0];
    let p0 = sm.var[0].max(config.variance_floor); // audit:allow(PANIC02): public entry asserts >= 10 observations

    // Observation noise.
    let v_u = (observations
        .iter()
        .zip(delta.iter().zip(&pi))
        .map(|(&d, (&m, &p))| d * d - 2.0 * d * m + p)
        .sum::<f64>()
        / n as f64)
        .max(config.variance_floor);

    // Joint (β, w̄) solve:  β·S + w̄·B = A  and  β·B + w̄·n = C.
    let s: f64 = pi[..n - 1].iter().sum();
    let b: f64 = delta[..n - 1].iter().sum();
    let c: f64 = delta[1..].iter().sum();
    let a: f64 = pi_lag.iter().sum();
    let det = s * n_trans - b.powi(2);
    let (mut beta, w_bar) = if det.abs() > 1e-12 {
        let beta = (a * n_trans - b * c) / det;
        let w_bar = (c * s - a * b) / det;
        (beta, w_bar)
    } else {
        // Degenerate statistics (constant smoothed state): keep a
        // stationary random-walk-ish fallback.
        (0.0, if n_trans > 0.0 { c / n_trans } else { 0.0 })
    };
    // Stationarity guard (the paper requires β strictly below 1).
    beta = beta.clamp(-0.999, 0.999);

    // System noise variance: E[(Δ_i − βΔ_{i−1} − w̄)²] averaged over
    // transitions.
    let v_w = ((1..n)
        .map(|i| {
            pi[i] + beta * beta * pi[i - 1] + w_bar * w_bar
                - 2.0 * beta * pi_lag[i - 1]
                - 2.0 * w_bar * delta[i]
                + 2.0 * beta * w_bar * delta[i - 1]
        })
        .sum::<f64>()
        / n_trans)
        .max(config.variance_floor);

    StateSpaceParams {
        beta,
        v_w,
        v_u,
        w_bar,
        w0,
        p0,
    }
}

/// Calibrate the state-space parameters on a clean trace of measured
/// relative errors.
///
/// # Panics
/// Panics if fewer than 10 observations are supplied or any observation
/// is non-finite.
pub fn calibrate(
    observations: &[f64],
    initial: StateSpaceParams,
    config: &EmConfig,
) -> CalibrationOutcome {
    assert!(
        observations.len() >= 10,
        "calibration needs at least 10 observations, got {}",
        observations.len()
    );
    assert!(
        observations.iter().all(|d| d.is_finite()),
        "observations must be finite"
    );
    initial.validate();

    let mut params = initial;
    let mut log_likelihood = Vec::with_capacity(config.max_iterations);
    let mut converged = false;
    let mut iterations = 0;
    for _ in 0..config.max_iterations {
        iterations += 1;
        let sm = e_step(&params, observations);
        log_likelihood.push(sm.log_likelihood);
        let next = m_step(observations, &sm, config);
        let delta = params.max_delta(&next);
        params = next;
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }

    CalibrationOutcome {
        params,
        iterations,
        converged,
        log_likelihood,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_stats::rng::stream_rng;

    fn truth() -> StateSpaceParams {
        StateSpaceParams {
            beta: 0.8,
            v_w: 0.004,
            v_u: 0.002,
            w_bar: 0.03,
            w0: 0.5,
            p0: 0.05,
        }
    }

    fn tight_config() -> EmConfig {
        EmConfig {
            tolerance: 1e-4,
            max_iterations: 500,
            variance_floor: 1e-10,
        }
    }

    #[test]
    fn recovers_known_parameters() {
        let p = truth();
        let mut rng = stream_rng(10, 0);
        let trace = p.simulate(8000, &mut rng);
        let out = calibrate(
            &trace,
            StateSpaceParams::em_initial_guess(),
            &tight_config(),
        );
        assert!(
            out.converged,
            "EM did not converge in {} iters",
            out.iterations
        );
        let got = out.params;
        assert!(
            (got.beta - p.beta).abs() < 0.1,
            "beta {} vs {}",
            got.beta,
            p.beta
        );
        // The stationary mean is identifiable even when β and w̄ trade off.
        assert!(
            (got.stationary_mean() - p.stationary_mean()).abs() < 0.02,
            "stationary mean {} vs {}",
            got.stationary_mean(),
            p.stationary_mean()
        );
        // Total observed variance splits between v_w and v_u; check the sum.
        let got_total = got.stationary_variance() + got.v_u;
        let want_total = p.stationary_variance() + p.v_u;
        assert!(
            (got_total - want_total).abs() / want_total < 0.15,
            "total var {} vs {}",
            got_total,
            want_total
        );
    }

    #[test]
    fn log_likelihood_is_nondecreasing() {
        let p = truth();
        let mut rng = stream_rng(11, 0);
        let trace = p.simulate(1500, &mut rng);
        let out = calibrate(
            &trace,
            StateSpaceParams::em_initial_guess(),
            &tight_config(),
        );
        for w in out.log_likelihood.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6 * w[0].abs().max(1.0),
                "log-likelihood decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn paper_tolerance_converges_quickly() {
        let p = truth();
        let mut rng = stream_rng(12, 0);
        let trace = p.simulate(2000, &mut rng);
        let out = calibrate(
            &trace,
            StateSpaceParams::em_initial_guess(),
            &EmConfig::default(),
        );
        assert!(out.converged);
        assert!(
            out.iterations <= 60,
            "paper-tolerance EM should be quick, took {}",
            out.iterations
        );
    }

    #[test]
    fn calibrated_params_are_valid_model() {
        let p = truth();
        let mut rng = stream_rng(13, 0);
        let trace = p.simulate(800, &mut rng);
        let out = calibrate(
            &trace,
            StateSpaceParams::em_initial_guess(),
            &EmConfig::default(),
        );
        out.params.validate(); // must not panic
    }

    #[test]
    fn calibrated_filter_whitens_innovations() {
        // End-to-end: calibrate on one trace, filter a second independent
        // trace, innovations should be standardized white noise.
        let p = truth();
        let mut rng = stream_rng(14, 0);
        let train = p.simulate(4000, &mut rng);
        let test = p.simulate(4000, &mut rng);
        let out = calibrate(
            &train,
            StateSpaceParams::em_initial_guess(),
            &tight_config(),
        );
        let mut filter = crate::kalman::KalmanFilter::new(out.params);
        let mut z = Vec::new();
        for &d in &test {
            let pred = filter.predict();
            let innovation = filter.update(d);
            z.push(innovation / pred.innovation_variance.sqrt());
        }
        let z = &z[100..];
        let mut s = ices_stats::OnlineStats::new();
        for &x in z {
            s.push(x);
        }
        assert!(s.mean().abs() < 0.06, "mean {}", s.mean());
        assert!((s.variance() - 1.0).abs() < 0.12, "var {}", s.variance());
    }

    #[test]
    fn handles_nearly_constant_traces() {
        // A degenerate trace (tiny variation) must not produce NaNs or an
        // invalid model.
        let trace: Vec<f64> = (0..100).map(|i| 0.2 + 1e-9 * (i % 3) as f64).collect();
        let out = calibrate(
            &trace,
            StateSpaceParams::em_initial_guess(),
            &EmConfig::default(),
        );
        out.params.validate();
        assert!(out.params.beta.abs() < 1.0);
    }

    #[test]
    fn deterministic() {
        let p = truth();
        let mut rng = stream_rng(15, 0);
        let trace = p.simulate(500, &mut rng);
        let a = calibrate(
            &trace,
            StateSpaceParams::em_initial_guess(),
            &EmConfig::default(),
        );
        let b = calibrate(
            &trace,
            StateSpaceParams::em_initial_guess(),
            &EmConfig::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 10 observations")]
    fn rejects_tiny_traces() {
        calibrate(
            &[0.1; 5],
            StateSpaceParams::em_initial_guess(),
            &EmConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "observations must be finite")]
    fn rejects_nan_observations() {
        let mut t = vec![0.1; 20];
        t[7] = f64::NAN;
        calibrate(
            &t,
            StateSpaceParams::em_initial_guess(),
            &EmConfig::default(),
        );
    }
}
