//! Fast-tier evaluation sweep (`ICES_FAST=1`).
//!
//! Everything in this module is allowed to reorder or refactor f64
//! arithmetic relative to the exact scalar recursions — that is the
//! point of the tier, and the FAST01 audit rule confines such code to
//! `fast` modules. The reassociations here:
//!
//! * the threshold test runs in **squared form**: `η² ≥ v_η · q²`
//!   instead of `|η| ≥ √v_η · q`, trading the per-slot `sqrt` on the
//!   comparison path for one multiply (the reported `threshold` is
//!   recovered as `(v_η · q²).sqrt()` — a *fused normalize* whose low
//!   bits can differ from the exact tier's `√v_η · q`);
//! * the sweep is chunked into 4-wide lanes so the compiler can keep
//!   four independent comparisons in flight.
//!
//! Outputs are deterministic for a given tier (same inputs → same
//! bits, at any `ICES_THREADS`), but are **not** bit-identical to the
//! exact tier. Fast-tier results carry their own golden fingerprints,
//! and tier-2 runs a statistical equivalence gate over the chaos and
//! adversary sweeps (see DESIGN.md §14).

use super::DetectorBank;
use crate::detector::Verdict;

const LANES: usize = 4;

/// Columnized threshold test on the fast tier. Same observable
/// contract as the exact sweep in [`DetectorBank::evaluate_all`]
/// (verdict per active slot, no state change, panics on non-finite
/// active observations) but with reassociated arithmetic.
pub(super) fn evaluate_sweep(
    bank: &DetectorBank,
    observations: &[f64],
    active: &[bool],
) -> Vec<Option<Verdict>> {
    let n = bank.len();
    let mut out = Vec::with_capacity(n);
    let mut lane = |i: usize| {
        if !active[i] {
            out.push(None);
            return;
        }
        debug_assert!(!bank.dirty[i], "slot {i} touched since predict_all");
        let observation = observations[i];
        assert!(
            observation.is_finite(),
            "observation must be finite, got {observation}"
        );
        let innovation = observation - bank.predicted[i];
        let q = bank.q_half_alpha[i];
        // Squared-form comparison; sqrt only to surface the threshold.
        let threshold_sq = bank.innov_var[i] * (q * q);
        out.push(Some(Verdict {
            suspicious: innovation * innovation >= threshold_sq,
            innovation,
            threshold: threshold_sq.sqrt(),
            predicted: bank.predicted[i],
            innovation_variance: bank.innov_var[i],
        }));
    };
    let full = n - n % LANES;
    let mut i = 0;
    while i < full {
        lane(i);
        lane(i + 1);
        lane(i + 2);
        lane(i + 3);
        i += LANES;
    }
    while i < n {
        lane(i);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::batch::DetectorBank;
    use crate::detector::Detector;
    use crate::model::StateSpaceParams;
    use ices_stats::rng::stream_rng;

    fn params() -> StateSpaceParams {
        StateSpaceParams {
            beta: 0.85,
            v_w: 0.003,
            v_u: 0.002,
            w_bar: 0.015,
            w0: 0.3,
            p0: 0.02,
        }
    }

    fn driven_banks(n: usize, steps: usize) -> (DetectorBank, DetectorBank, Vec<f64>) {
        let p = params();
        let mut rng = stream_rng(41, 0);
        let mut det = Detector::new(p, 0.05);
        for obs in p.simulate(steps, &mut rng) {
            det.assess(obs);
        }
        let mut exact = DetectorBank::with_tier(false);
        let mut fast = DetectorBank::with_tier(true);
        for _ in 0..n {
            exact.push(&det);
            fast.push(&det);
        }
        exact.predict_all();
        fast.predict_all();
        let obs: Vec<f64> = (0..n).map(|i| 0.2 + 0.01 * i as f64).collect();
        (exact, fast, obs)
    }

    /// The fast sweep must agree with the exact tier on everything but
    /// the low bits of the threshold — and must be deterministic.
    #[test]
    fn fast_sweep_tracks_exact_tier_closely() {
        let (exact, fast, obs) = driven_banks(11, 30);
        let active = vec![true; 11];
        let ve = exact.evaluate_all(&obs, &active);
        let vf = fast.evaluate_all(&obs, &active);
        for (e, f) in ve.iter().zip(vf.iter()) {
            let (e, f) = (e.expect("active"), f.expect("active"));
            // Innovation and prediction are untouched by the fast tier.
            assert_eq!(e.innovation.to_bits(), f.innovation.to_bits());
            assert_eq!(e.predicted.to_bits(), f.predicted.to_bits());
            assert_eq!(
                e.innovation_variance.to_bits(),
                f.innovation_variance.to_bits()
            );
            // Threshold agrees to ulp-scale relative error.
            let rel = ((e.threshold - f.threshold) / e.threshold).abs();
            assert!(rel < 1e-12, "threshold drifted: {} vs {}", e.threshold, f.threshold);
        }
        // Deterministic per tier.
        let vf2 = fast.evaluate_all(&obs, &active);
        for (a, b) in vf.iter().zip(vf2.iter()) {
            let (a, b) = (a.expect("active"), b.expect("active"));
            assert_eq!(a.threshold.to_bits(), b.threshold.to_bits());
            assert_eq!(a.suspicious, b.suspicious);
        }
    }

    /// Golden fingerprint of the fast-tier threshold bits: the fast
    /// tier is allowed to differ from exact, but must never drift
    /// silently from itself.
    #[test]
    fn fast_threshold_fingerprint_is_stable() {
        let (_, fast, obs) = driven_banks(5, 30);
        let active = vec![true; 5];
        let verdicts = fast.evaluate_all(&obs, &active);
        let fingerprint = verdicts
            .iter()
            .map(|v| v.expect("active").threshold.to_bits())
            .fold(0u64, |acc, bits| {
                acc.rotate_left(13) ^ bits.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            });
        assert_eq!(
            fingerprint, 0x052b_f751_a0eb_b7b2,
            "fast-tier threshold fingerprint changed: got {fingerprint:#018x}; \
             if the reassociation deliberately changed, re-record this constant"
        );
    }

    #[test]
    fn remainder_lanes_and_inactive_slots_are_handled() {
        let (exact, fast, obs) = driven_banks(7, 12);
        let mut active = vec![true; 7];
        active[2] = false;
        active[6] = false;
        let ve = exact.evaluate_all(&obs, &active);
        let vf = fast.evaluate_all(&obs, &active);
        for i in 0..7 {
            assert_eq!(ve[i].is_some(), vf[i].is_some(), "slot {i}");
            if let (Some(e), Some(f)) = (ve[i], vf[i]) {
                assert_eq!(e.suspicious, f.suspicious, "slot {i}");
            }
        }
    }
}
