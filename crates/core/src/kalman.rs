//! The scalar Kalman filter over the relative-error state space.
//!
//! Implements §2.1 of the paper verbatim. Prediction:
//!
//! ```text
//! Δ̂_{i|i−1} = β·Δ̂_{i−1|i−1} + w̄
//! P_{i|i−1} = β²·P_{i−1|i−1} + v_W
//! ```
//!
//! Update on observing `D_i`:
//!
//! ```text
//! K_i      = P_{i|i−1} / (P_{i|i−1} + v_U)
//! Δ̂_{i|i} = Δ̂_{i|i−1} + K_i·(D_i − Δ̂_{i|i−1})
//! P_{i|i}  = v_U·P_{i|i−1} / (P_{i|i−1} + v_U)
//! ```
//!
//! The **innovation** `η_i = D_i − Δ̂_{i|i−1}` is, under the clean-system
//! hypothesis, white gaussian with variance `v_η,i = v_U + P_{i|i−1}` —
//! the quantity the detection test thresholds. The filter also tracks the
//! paper's recalibration trigger: 10 consecutive innovations outside the
//! ±2√v_η confidence interval.

use crate::model::{ModelError, StateSpaceParams};
use serde::{Deserialize, Serialize};

/// Number of consecutive out-of-confidence-interval innovations after
/// which the paper recalibrates the filter (§2.2).
pub const RECALIBRATION_STREAK: u32 = 10;

/// Width of the recalibration confidence interval in standard deviations
/// (±2√v_η ≈ the 95% band). `pub(crate)` so the batched kernel
/// (`crate::batch`) applies the identical band.
pub(crate) const RECALIBRATION_BAND: f64 = 2.0;

/// A one-step-ahead prediction: the predicted relative error and the
/// innovation variance an observation would be compared under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// `Δ̂_{i|i−1}` — the predicted relative error.
    pub predicted: f64,
    /// `P_{i|i−1}` — the a-priori state variance.
    pub state_variance: f64,
    /// `v_η,i = v_U + P_{i|i−1}` — the innovation variance.
    pub innovation_variance: f64,
}

/// The scalar Kalman filter of §2.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KalmanFilter {
    params: StateSpaceParams,
    /// `Δ̂_{i|i}` after the most recent update.
    estimate: f64,
    /// `P_{i|i}` after the most recent update.
    variance: f64,
    /// Observations incorporated so far.
    updates: u64,
    /// Current run of innovations outside the ±2σ band.
    outside_streak: u32,
}

impl KalmanFilter {
    /// Initialize from calibrated parameters: `Δ̂_{0|0} = w₀`,
    /// `P_{0|0} = p₀`, rejecting invalid parameters with a typed error.
    pub fn try_new(params: StateSpaceParams) -> Result<Self, ModelError> {
        params.check()?;
        Ok(Self {
            params,
            estimate: params.w0,
            variance: params.p0,
            updates: 0,
            outside_streak: 0,
        })
    }

    /// [`KalmanFilter::try_new`] for contexts that cannot propagate the
    /// error (the long-standing public constructor).
    ///
    /// # Panics
    /// Panics if the parameters are invalid (see
    /// [`StateSpaceParams::check`]).
    pub fn new(params: StateSpaceParams) -> Self {
        Self::try_new(params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The calibrated parameters this filter runs on.
    pub fn params(&self) -> &StateSpaceParams {
        &self.params
    }

    /// Current filtered estimate `Δ̂_{i|i}`.
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// Current a-posteriori variance `P_{i|i}`.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Observations incorporated so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Raw mutable state for the batched kernel's gather phase:
    /// `(estimate, variance, updates, outside_streak)`. Crate-private:
    /// only `crate::batch` flattens filters into SoA columns.
    pub(crate) fn raw_state(&self) -> (f64, f64, u64, u32) {
        (self.estimate, self.variance, self.updates, self.outside_streak)
    }

    /// Scatter the batched kernel's column back into this filter. The
    /// bank runs the exact update/time-update recursions, so the values
    /// written here are bit-for-bit what the scalar path would have
    /// produced. Crate-private for the same reason as
    /// [`KalmanFilter::raw_state`].
    pub(crate) fn set_raw_state(
        &mut self,
        estimate: f64,
        variance: f64,
        updates: u64,
        outside_streak: u32,
    ) {
        self.estimate = estimate;
        self.variance = variance;
        self.updates = updates;
        self.outside_streak = outside_streak;
    }

    /// One-step-ahead prediction for the next observation.
    pub fn predict(&self) -> Prediction {
        let p = &self.params;
        let predicted = p.beta * self.estimate + p.w_bar;
        let state_variance = p.beta * p.beta * self.variance + p.v_w;
        Prediction {
            predicted,
            state_variance,
            innovation_variance: state_variance + p.v_u,
        }
    }

    /// Incorporate an observed relative error `D_i`, returning the
    /// innovation `η_i = D_i − Δ̂_{i|i−1}`.
    ///
    /// # Panics
    /// Panics on a non-finite observation.
    pub fn update(&mut self, observation: f64) -> f64 {
        assert!(
            observation.is_finite(),
            "observation must be finite, got {observation}"
        );
        let pred = self.predict();
        let innovation = observation - pred.predicted;
        let gain = pred.state_variance / (pred.state_variance + self.params.v_u);
        self.estimate = pred.predicted + gain * innovation;
        self.variance =
            self.params.v_u * pred.state_variance / (pred.state_variance + self.params.v_u);
        debug_assert!(
            self.variance.is_finite() && self.variance >= 0.0,
            "posterior variance must stay finite and non-negative, got {}",
            self.variance
        );
        self.updates += 1;
        // Recalibration bookkeeping (±2σ band, §2.2).
        let band = RECALIBRATION_BAND * pred.innovation_variance.sqrt();
        if innovation.abs() > band {
            self.outside_streak += 1;
        } else {
            self.outside_streak = 0;
        }
        innovation
    }

    /// Advance the filter one step **without** a measurement (the
    /// time-update half of the Kalman recursion):
    ///
    /// ```text
    /// Δ̂_{i|i} ← β·Δ̂_{i−1|i−1} + w̄        (no gain correction)
    /// P_{i|i} ← β²·P_{i−1|i−1} + v_W      (uncertainty grows)
    /// ```
    ///
    /// This is how a lost or timed-out probe is absorbed: the state
    /// coasts along the model dynamics and the variance widens, so the
    /// next real observation is judged against an honestly larger
    /// innovation variance instead of a stale, over-confident one.
    /// Does not count as an update and leaves the recalibration streak
    /// untouched (no innovation was observed).
    pub fn time_update(&mut self) {
        let pred = self.predict();
        self.estimate = pred.predicted;
        self.variance = pred.state_variance;
        debug_assert!(
            self.variance.is_finite() && self.variance >= 0.0,
            "coasting variance must stay finite and non-negative, got {}",
            self.variance
        );
    }

    /// Whether the paper's recalibration condition has fired: 10
    /// consecutive innovations outside the ±2√v_η confidence interval.
    pub fn needs_recalibration(&self) -> bool {
        self.outside_streak >= RECALIBRATION_STREAK
    }

    /// Reset state after recalibration with fresh parameters.
    pub fn recalibrate(&mut self, params: StateSpaceParams) {
        *self = Self::new(params);
    }

    /// Run the filter over a whole trace, returning each step's
    /// `(prediction, innovation)` — the series Fig 2 of the paper plots.
    pub fn run_trace(params: StateSpaceParams, observations: &[f64]) -> Vec<(Prediction, f64)> {
        let mut filter = Self::new(params);
        observations
            .iter()
            .map(|&d| {
                let pred = filter.predict();
                let innovation = filter.update(d);
                (pred, innovation)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_stats::rng::stream_rng;
    use ices_stats::{lilliefors_test, norm_cdf, LillieforsOutcome, OnlineStats};

    fn params() -> StateSpaceParams {
        StateSpaceParams {
            beta: 0.85,
            v_w: 0.003,
            v_u: 0.002,
            w_bar: 0.015,
            w0: 0.4,
            p0: 0.05,
        }
    }

    #[test]
    fn initializes_from_w0_p0() {
        let f = KalmanFilter::new(params());
        assert_eq!(f.estimate(), 0.4);
        assert_eq!(f.variance(), 0.05);
        assert_eq!(f.updates(), 0);
    }

    #[test]
    fn predict_follows_paper_equations() {
        let f = KalmanFilter::new(params());
        let pred = f.predict();
        assert!((pred.predicted - (0.85 * 0.4 + 0.015)).abs() < 1e-12);
        assert!((pred.state_variance - (0.85 * 0.85 * 0.05 + 0.003)).abs() < 1e-12);
        assert!((pred.innovation_variance - (pred.state_variance + 0.002)).abs() < 1e-12);
    }

    #[test]
    fn update_applies_kalman_gain() {
        let mut f = KalmanFilter::new(params());
        let pred = f.predict();
        let obs = 0.6;
        let innovation = f.update(obs);
        assert!((innovation - (obs - pred.predicted)).abs() < 1e-12);
        let gain = pred.state_variance / (pred.state_variance + 0.002);
        assert!((f.estimate() - (pred.predicted + gain * innovation)).abs() < 1e-12);
        // Posterior variance shrinks below both prior and v_U.
        assert!(f.variance() < pred.state_variance);
        assert!(f.variance() < 0.002);
    }

    #[test]
    fn variance_converges_to_steady_state() {
        let mut f = KalmanFilter::new(params());
        let mut rng = stream_rng(1, 0);
        let trace = params().simulate(2000, &mut rng);
        let mut last = f64::NAN;
        for &d in &trace {
            f.update(d);
            last = f.variance();
        }
        // Steady-state Riccati fixed point: P = vU(β²P + vW)/(β²P + vW + vU).
        let p = last;
        let prior = 0.85 * 0.85 * p + 0.003;
        let fixed = 0.002 * prior / (prior + 0.002);
        assert!((p - fixed).abs() < 1e-9, "P = {p}, fixed point = {fixed}");
    }

    #[test]
    fn innovations_on_clean_data_are_white_gaussian() {
        // The model's own data must produce standardized innovations that
        // pass the very normality test the paper applies (§3.1).
        let p = params();
        let mut rng = stream_rng(2, 0);
        let trace = p.simulate(3000, &mut rng);
        let mut f = KalmanFilter::new(p);
        let mut standardized = Vec::with_capacity(trace.len());
        for &d in &trace {
            let pred = f.predict();
            let innovation = f.update(d);
            standardized.push(innovation / pred.innovation_variance.sqrt());
        }
        // Drop the transient.
        let z = &standardized[100..];
        let mut s = OnlineStats::new();
        for &x in z {
            s.push(x);
        }
        assert!(s.mean().abs() < 0.08, "mean = {}", s.mean());
        assert!((s.variance() - 1.0).abs() < 0.1, "var = {}", s.variance());
        let LillieforsOutcome { rejected, .. } =
            lilliefors_test(z, ices_stats::lilliefors::Significance::OnePercent);
        assert!(!rejected, "innovations should look gaussian");
        // Whiteness: lag-1 autocorrelation near zero.
        let mean = s.mean();
        let num: f64 = z.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let den: f64 = z.iter().map(|x| (x - mean) * (x - mean)).sum();
        let rho1 = num / den;
        assert!(rho1.abs() < 0.08, "lag-1 autocorrelation {rho1}");
    }

    #[test]
    fn innovation_coverage_matches_gaussian_tail() {
        // ~95% of innovations should fall inside ±1.96σ on clean data.
        let p = params();
        let mut rng = stream_rng(3, 0);
        let trace = p.simulate(20_000, &mut rng);
        let mut f = KalmanFilter::new(p);
        let mut inside = 0usize;
        for &d in &trace {
            let pred = f.predict();
            let innovation = f.update(d);
            if innovation.abs() <= 1.96 * pred.innovation_variance.sqrt() {
                inside += 1;
            }
        }
        let frac = inside as f64 / trace.len() as f64;
        let want = norm_cdf(1.96) - norm_cdf(-1.96);
        assert!((frac - want).abs() < 0.01, "coverage {frac} vs {want}");
    }

    #[test]
    fn recalibration_fires_after_ten_consecutive_outliers() {
        let mut f = KalmanFilter::new(params());
        // Feed benign data first.
        for _ in 0..20 {
            f.update(f.predict().predicted);
            assert!(!f.needs_recalibration());
        }
        // Now hammer it with wildly deviant observations.
        for i in 0..10 {
            assert!(!f.needs_recalibration(), "fired early at {i}");
            f.update(100.0 + i as f64 * 50.0);
        }
        assert!(f.needs_recalibration());
    }

    #[test]
    fn streak_resets_on_inlier() {
        let mut f = KalmanFilter::new(params());
        for _ in 0..9 {
            f.update(1e6); // way outside
        }
        assert!(!f.needs_recalibration());
        f.update(f.predict().predicted); // back inside
        for _ in 0..9 {
            f.update(1e6);
        }
        assert!(!f.needs_recalibration(), "streak should have reset");
    }

    #[test]
    fn recalibrate_resets_everything() {
        let mut f = KalmanFilter::new(params());
        for _ in 0..15 {
            f.update(1e6);
        }
        assert!(f.needs_recalibration());
        f.recalibrate(params());
        assert!(!f.needs_recalibration());
        assert_eq!(f.updates(), 0);
        assert_eq!(f.estimate(), 0.4);
    }

    #[test]
    fn tracking_reduces_prediction_error_versus_constant() {
        // The filter must beat the naive "predict the stationary mean"
        // baseline on autocorrelated data.
        let p = params();
        let mut rng = stream_rng(4, 0);
        let trace = p.simulate(5000, &mut rng);
        let mut f = KalmanFilter::new(p);
        let stationary = p.stationary_mean();
        let mut filter_se = 0.0;
        let mut baseline_se = 0.0;
        for &d in &trace[100..] {
            let pred = f.predict();
            filter_se += (d - pred.predicted).powi(2);
            baseline_se += (d - stationary).powi(2);
            f.update(d);
        }
        assert!(
            filter_se < 0.8 * baseline_se,
            "filter {filter_se} vs baseline {baseline_se}"
        );
    }

    #[test]
    fn run_trace_matches_stepwise_filtering() {
        let p = params();
        let mut rng = stream_rng(5, 0);
        let trace = p.simulate(100, &mut rng);
        let batch = KalmanFilter::run_trace(p, &trace);
        let mut f = KalmanFilter::new(p);
        for (i, &d) in trace.iter().enumerate() {
            let pred = f.predict();
            let innovation = f.update(d);
            assert_eq!(batch[i].0, pred);
            assert_eq!(batch[i].1, innovation);
        }
    }

    #[test]
    fn time_update_follows_model_dynamics() {
        let mut f = KalmanFilter::new(params());
        f.update(0.35);
        let pred = f.predict();
        let updates = f.updates();
        f.time_update();
        assert_eq!(f.estimate(), pred.predicted);
        assert_eq!(f.variance(), pred.state_variance);
        assert_eq!(f.updates(), updates, "coasting is not an observation");
    }

    #[test]
    fn time_update_grows_variance_boundedly() {
        // Coasting widens uncertainty each step but converges to the
        // stationary variance v_W / (1 − β²), never diverging.
        let mut f = KalmanFilter::new(params());
        for _ in 0..50 {
            f.update(0.3);
        }
        let posterior = f.variance();
        let mut prev = posterior;
        for _ in 0..500 {
            f.time_update();
            assert!(f.variance() >= prev, "variance must not shrink while blind");
            prev = f.variance();
        }
        let stationary = 0.003 / (1.0 - 0.85 * 0.85);
        assert!(
            (f.variance() - stationary).abs() < 1e-9,
            "coasting variance {} should settle at {stationary}",
            f.variance()
        );
    }

    #[test]
    fn time_update_preserves_recalibration_streak() {
        let mut f = KalmanFilter::new(params());
        for _ in 0..9 {
            f.update(1e6);
        }
        assert!(!f.needs_recalibration());
        f.time_update();
        f.update(1e6);
        assert!(
            f.needs_recalibration(),
            "a measurement-free step must not reset the outlier streak"
        );
    }

    #[test]
    #[should_panic(expected = "observation must be finite")]
    fn update_rejects_nan() {
        KalmanFilter::new(params()).update(f64::NAN);
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        let mut f = KalmanFilter::new(params());
        f.update(0.3);
        f.update(0.45);
        let json = serde_json::to_string(&f).expect("serialize");
        let back: KalmanFilter = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(f, back);
    }
}
