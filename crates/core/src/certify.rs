//! Certified coordinates for the *usage* phase — the extension the
//! paper's §6 sketches and leaves as future work.
//!
//! Securing the embedding phase does not stop a malicious node from
//! blatantly lying about its coordinate when another node asks for it at
//! distance-estimation time. The paper suggests countering this "perhaps
//! through the use of validity periods for certified coordinates": a
//! trusted party (a Surveyor, which already vouches for clean system
//! behavior) attests that a node's coordinate was consistent with
//! reality at issue time, and consumers reject stale or forged claims.
//!
//! This module implements that sketch:
//!
//! * a [`Certifier`] (Surveyor-side) **verifies before vouching** — it
//!   measures the RTT to the node and only signs a coordinate whose
//!   implied distance matches the measurement within a tolerance;
//! * a [`CoordinateCertificate`] carries the coordinate, the issue time,
//!   a validity period (bounding how far the coordinate can drift before
//!   the holder must renew), and an authentication tag;
//! * consumers check the tag and freshness with
//!   [`Certifier::verify`] / [`CoordinateCertificate::is_fresh`].
//!
//! The authentication tag is a keyed hash built on SplitMix64 mixing.
//! **It is NOT a cryptographic MAC** — the simulation needs unforgeability
//! only against its modeled adversaries, not against cryptanalysis; a
//! deployment would swap in HMAC-SHA256 behind the same interface.

use crate::surveyor::SurveyorInfo;
use ices_coord::Coordinate;
use ices_stats::rng::splitmix64;
use serde::{Deserialize, Serialize};
use ices_stats::streams;

/// A time-bounded, authenticated coordinate claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordinateCertificate {
    /// The node whose coordinate is certified.
    pub node: usize,
    /// The certified coordinate.
    pub coordinate: Coordinate,
    /// Surveyor that issued the certificate.
    pub issuer: usize,
    /// Issue timestamp, in the system's logical time units.
    pub issued_at: u64,
    /// Validity period: the certificate expires at `issued_at + ttl`.
    pub ttl: u64,
    /// Authentication tag over all of the above.
    pub tag: u64,
}

impl CoordinateCertificate {
    /// Whether the certificate is still within its validity period at
    /// logical time `now` (expiry is exclusive).
    pub fn is_fresh(&self, now: u64) -> bool {
        now >= self.issued_at && now < self.issued_at.saturating_add(self.ttl)
    }
}

/// Reasons a certificate is rejected — or a [`Certifier`] refused to be
/// built at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CertificateError {
    /// The authentication tag does not verify.
    BadTag,
    /// The validity period has lapsed (or the certificate is post-dated).
    Expired,
    /// The claimed coordinate disagrees with the issuer's measurement.
    InconsistentCoordinate,
    /// A certifier with `ttl = 0` would issue certificates that are
    /// never fresh.
    ZeroTtl,
    /// The certifier's consistency tolerance must be positive.
    NonPositiveTolerance(f64),
}

impl std::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateError::BadTag => write!(f, "authentication tag does not verify"),
            CertificateError::Expired => write!(f, "certificate outside its validity period"),
            CertificateError::InconsistentCoordinate => {
                write!(f, "claimed coordinate inconsistent with measured RTT")
            }
            CertificateError::ZeroTtl => {
                write!(f, "a zero-ttl certificate can never be fresh")
            }
            CertificateError::NonPositiveTolerance(t) => {
                write!(f, "tolerance must be positive, got {t}")
            }
        }
    }
}

impl std::error::Error for CertificateError {}

/// A Surveyor-side certificate issuer/verifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Certifier {
    /// The issuing Surveyor's id.
    issuer: usize,
    /// Shared authentication key (in a deployment: per-issuer keypair).
    key: u64,
    /// Validity period granted to new certificates.
    ttl: u64,
    /// Largest tolerated relative disagreement between the claimed
    /// coordinate's implied distance and the measured RTT.
    tolerance: f64,
}

impl Certifier {
    /// Create a certifier for Surveyor `issuer` with authentication key
    /// `key`, granting certificates valid for `ttl` logical time units
    /// and vouching only for coordinates within `tolerance` relative
    /// error of its own measurement. Rejects a zero `ttl` or a
    /// non-positive `tolerance` with a typed error.
    pub fn try_new(
        issuer: usize,
        key: u64,
        ttl: u64,
        tolerance: f64,
    ) -> Result<Self, CertificateError> {
        if ttl == 0 {
            return Err(CertificateError::ZeroTtl);
        }
        // NaN must fail this check too, hence no `tolerance <= 0.0`.
        if tolerance.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(CertificateError::NonPositiveTolerance(tolerance));
        }
        Ok(Self {
            issuer,
            key,
            ttl,
            tolerance,
        })
    }

    /// [`Certifier::try_new`] for contexts that cannot propagate the
    /// error.
    ///
    /// # Panics
    /// Panics if `ttl` is zero or `tolerance` is not positive.
    pub fn new(issuer: usize, key: u64, ttl: u64, tolerance: f64) -> Self {
        Self::try_new(issuer, key, ttl, tolerance).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Convenience constructor taking the issuer's published
    /// [`SurveyorInfo`].
    pub fn for_surveyor(info: &SurveyorInfo, key: u64, ttl: u64, tolerance: f64) -> Self {
        Self::new(info.id, key, ttl, tolerance)
    }

    /// Issue a certificate for `node`'s claimed coordinate — but only
    /// after checking the claim against ground truth: `measured_rtt_ms`
    /// is the RTT the issuer just measured to the node, and
    /// `issuer_coordinate` is the issuer's own position. A claim whose
    /// implied distance deviates more than the tolerance is refused,
    /// so a liar cannot get a lie certified.
    pub fn issue(
        &self,
        node: usize,
        claimed: &Coordinate,
        issuer_coordinate: &Coordinate,
        measured_rtt_ms: f64,
        now: u64,
    ) -> Result<CoordinateCertificate, CertificateError> {
        let implied = issuer_coordinate.distance(claimed);
        let disagreement = (implied - measured_rtt_ms).abs() / measured_rtt_ms;
        if disagreement > self.tolerance {
            return Err(CertificateError::InconsistentCoordinate);
        }
        let mut cert = CoordinateCertificate {
            node,
            coordinate: claimed.clone(),
            issuer: self.issuer,
            issued_at: now,
            ttl: self.ttl,
            tag: 0,
        };
        cert.tag = self.tag_of(&cert);
        Ok(cert)
    }

    /// Verify a certificate's tag and freshness.
    pub fn verify(
        &self,
        cert: &CoordinateCertificate,
        now: u64,
    ) -> Result<(), CertificateError> {
        if cert.tag != self.tag_of(cert) || cert.issuer != self.issuer {
            return Err(CertificateError::BadTag);
        }
        if !cert.is_fresh(now) {
            return Err(CertificateError::Expired);
        }
        Ok(())
    }

    /// Keyed tag over the certificate's authenticated fields (a
    /// SplitMix64 compression chain — see the module docs for why this
    /// placeholder is acceptable here).
    fn tag_of(&self, cert: &CoordinateCertificate) -> u64 {
        let mut acc = splitmix64(self.key ^ streams::CERT); // "CERT"
        let mut absorb = |v: u64| {
            acc = splitmix64(acc ^ v);
        };
        absorb(cert.node as u64);
        absorb(cert.issuer as u64);
        absorb(cert.issued_at);
        absorb(cert.ttl);
        absorb(cert.coordinate.height().to_bits());
        for &x in cert.coordinate.position() {
            absorb(x.to_bits());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_coord::Space;

    fn setup() -> (Certifier, Coordinate, Coordinate) {
        let certifier = Certifier::new(7, 0xBEEF, 100, 0.3);
        let issuer_coord = Coordinate::new(vec![0.0, 0.0], 2.0);
        let node_coord = Coordinate::new(vec![30.0, 40.0], 3.0);
        (certifier, issuer_coord, node_coord)
    }

    #[test]
    fn issues_and_verifies_consistent_claims() {
        let (certifier, issuer_coord, node_coord) = setup();
        // Implied distance = 50 + 2 + 3 = 55; measured close to it.
        let cert = certifier
            .issue(42, &node_coord, &issuer_coord, 57.0, 1000)
            .expect("consistent claim certifies");
        assert_eq!(cert.node, 42);
        assert_eq!(cert.issuer, 7);
        certifier.verify(&cert, 1000).expect("fresh and authentic");
        certifier.verify(&cert, 1099).expect("still within ttl");
    }

    #[test]
    fn refuses_to_certify_a_lie() {
        let (certifier, issuer_coord, _) = setup();
        let lie = Coordinate::new(vec![5000.0, 0.0], 0.0);
        let err = certifier
            .issue(42, &lie, &issuer_coord, 57.0, 1000)
            .expect_err("a wild claim must be refused");
        assert_eq!(err, CertificateError::InconsistentCoordinate);
    }

    #[test]
    fn expires_after_the_validity_period() {
        let (certifier, issuer_coord, node_coord) = setup();
        let cert = certifier
            .issue(42, &node_coord, &issuer_coord, 55.0, 1000)
            .expect("certifies");
        assert_eq!(
            certifier.verify(&cert, 1100),
            Err(CertificateError::Expired)
        );
        assert_eq!(
            certifier.verify(&cert, 999),
            Err(CertificateError::Expired),
            "post-dated use must fail too"
        );
    }

    #[test]
    fn tampering_breaks_the_tag() {
        let (certifier, issuer_coord, node_coord) = setup();
        let cert = certifier
            .issue(42, &node_coord, &issuer_coord, 55.0, 1000)
            .expect("certifies");

        let mut forged = cert.clone();
        forged.coordinate = Coordinate::new(vec![999.0, 0.0], 0.0);
        assert_eq!(
            certifier.verify(&forged, 1000),
            Err(CertificateError::BadTag)
        );

        let mut extended = cert.clone();
        extended.ttl = u64::MAX; // try to never expire
        assert_eq!(
            certifier.verify(&extended, 1000),
            Err(CertificateError::BadTag)
        );

        let mut reassigned = cert;
        reassigned.node = 43; // replay someone else's coordinate
        assert_eq!(
            certifier.verify(&reassigned, 1000),
            Err(CertificateError::BadTag)
        );
    }

    #[test]
    fn different_keys_do_not_cross_verify() {
        let (certifier, issuer_coord, node_coord) = setup();
        let other = Certifier::new(7, 0xDEAD, 100, 0.3);
        let cert = certifier
            .issue(42, &node_coord, &issuer_coord, 55.0, 1000)
            .expect("certifies");
        assert_eq!(other.verify(&cert, 1000), Err(CertificateError::BadTag));
    }

    #[test]
    fn freshness_window_is_half_open() {
        let cert = CoordinateCertificate {
            node: 1,
            coordinate: Coordinate::origin(Space::with_height(2)),
            issuer: 2,
            issued_at: 100,
            ttl: 10,
            tag: 0,
        };
        assert!(cert.is_fresh(100));
        assert!(cert.is_fresh(109));
        assert!(!cert.is_fresh(110));
        assert!(!cert.is_fresh(99));
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            Certifier::try_new(7, 0xBEEF, 0, 0.3).err(),
            Some(CertificateError::ZeroTtl)
        );
        assert_eq!(
            Certifier::try_new(7, 0xBEEF, 100, 0.0).err(),
            Some(CertificateError::NonPositiveTolerance(0.0))
        );
        assert!(Certifier::try_new(7, 0xBEEF, 100, 0.3).is_ok());
    }

    #[test]
    fn serde_roundtrip_preserves_verifiability() {
        let (certifier, issuer_coord, node_coord) = setup();
        let cert = certifier
            .issue(42, &node_coord, &issuer_coord, 55.0, 1000)
            .expect("certifies");
        let json = serde_json::to_string(&cert).expect("serialize");
        let back: CoordinateCertificate = serde_json::from_str(&json).expect("deserialize");
        certifier.verify(&back, 1050).expect("still verifies");
    }
}
