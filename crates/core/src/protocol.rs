//! The generic detection protocol (§4.2 of the paper).
//!
//! [`SecureNode`] wraps any embedding node (Vivaldi, NPS, …) and vets
//! every embedding step with the innovation test before letting it touch
//! the coordinate:
//!
//! * **Accepted** steps update both the filter and the embedding.
//! * **Rejected** steps are aborted, the observation discarded, and the
//!   peer flagged for replacement (a new neighbor in Vivaldi, a new
//!   reference point in NPS).
//! * **First-time peers** get one chance at a reprieve: a second,
//!   stricter hypothesis test at significance `e_l·α` (scaled by the
//!   node's own confidence). A converged node (`e_l` small → wide
//!   threshold) affords a joining peer time to converge; an unconverged
//!   node grants few reprieves because it cannot afford aborted steps.
//! * When **half the node's peers get rejected within one embedding
//!   round**, the filter parameters are presumed stale and the node asks
//!   the Surveyor infrastructure for fresh ones ([`SecureStep`] callers
//!   observe this through [`SecureNode::end_round`]).

use crate::batch::DetectorBank;
use crate::detector::{Detector, Verdict};
use crate::model::StateSpaceParams;
use ices_coord::{Embedding, PeerSample, StepOutcome};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An invalid [`SecurityConfig`] field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConfigError {
    /// `alpha` outside `(0, 1)`.
    InvalidAlpha(f64),
    /// `refresh_fraction` outside `(0, 1]`.
    InvalidRefreshFraction(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidAlpha(a) => {
                write!(f, "alpha must be in (0,1), got {a}")
            }
            ConfigError::InvalidRefreshFraction(r) => {
                write!(f, "refresh_fraction must be in (0,1], got {r}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Knobs of the detection protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SecurityConfig {
    /// Significance level `α` of the primary test (the paper: 5%).
    pub alpha: f64,
    /// Whether first-time peers may be reprieved (ablation switch).
    pub reprieve_enabled: bool,
    /// Fraction of a round's peers whose rejection triggers a filter
    /// refresh (the paper: half).
    pub refresh_fraction: f64,
}

impl Default for SecurityConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl SecurityConfig {
    /// The paper's protocol: α = 5%, reprieves on, refresh at half.
    pub fn paper_default() -> Self {
        Self {
            alpha: 0.05,
            reprieve_enabled: true,
            refresh_fraction: 0.5,
        }
    }

    /// Validate invariants: `alpha ∈ (0,1)` and
    /// `refresh_fraction ∈ (0,1]`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(ConfigError::InvalidAlpha(self.alpha));
        }
        if !(self.refresh_fraction > 0.0 && self.refresh_fraction <= 1.0) {
            return Err(ConfigError::InvalidRefreshFraction(self.refresh_fraction));
        }
        Ok(())
    }

    /// [`SecurityConfig::validate`] for contexts that cannot propagate
    /// the error (constructors, examples).
    ///
    /// # Panics
    /// Panics with the [`ConfigError`] message on an invalid config.
    pub fn validate_or_panic(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// The vetted outcome of one embedding step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SecureStep {
    /// The step passed the test and was applied to the embedding.
    Accepted {
        /// What the embedding did with the sample.
        outcome: StepOutcome,
        /// The test's verdict (not suspicious).
        verdict: Verdict,
    },
    /// The step was flagged, but the peer — seen for the first time —
    /// passed the secondary `e_l·α` test: the step is aborted but the
    /// peer is kept for a later retry.
    Reprieved {
        /// The primary test's verdict (suspicious).
        verdict: Verdict,
        /// The secondary threshold the innovation stayed under.
        reprieve_threshold: f64,
    },
    /// The step was flagged and the peer should be replaced.
    Rejected {
        /// The test's verdict (suspicious).
        verdict: Verdict,
    },
}

impl SecureStep {
    /// Whether the embedding step was completed.
    pub fn accepted(&self) -> bool {
        matches!(self, SecureStep::Accepted { .. })
    }

    /// Whether the caller should replace this peer.
    pub fn replace_peer(&self) -> bool {
        matches!(self, SecureStep::Rejected { .. })
    }

    /// The primary verdict regardless of outcome.
    pub fn verdict(&self) -> &Verdict {
        match self {
            SecureStep::Accepted { verdict, .. }
            | SecureStep::Reprieved { verdict, .. }
            | SecureStep::Rejected { verdict } => verdict,
        }
    }
}

/// What a completed round tells the node to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundAction {
    /// Keep going with the current filter.
    Continue,
    /// Too many rejections this round: fetch fresh filter parameters
    /// from the (coordinate-)closest Surveyor.
    RefreshFilter,
}

/// An embedding node protected by the detection protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SecureNode<E> {
    inner: E,
    detector: Detector,
    config: SecurityConfig,
    /// Surveyor whose parameters currently drive the filter.
    filter_source: usize,
    /// Peers this node has embedded against at least once.
    seen_peers: BTreeSet<usize>,
    /// Distinct peers tested in the current round.
    round_peers: BTreeSet<usize>,
    /// Distinct peers rejected in the current round.
    round_rejections: BTreeSet<usize>,
    /// Lifetime counts, for diagnostics.
    accepted: u64,
    reprieved: u64,
    rejected: u64,
}

impl<E: Embedding> SecureNode<E> {
    /// Wrap an embedding node with a detector calibrated from
    /// `params` (obtained from Surveyor `filter_source`).
    pub fn new(
        inner: E,
        params: StateSpaceParams,
        filter_source: usize,
        config: SecurityConfig,
    ) -> Self {
        config.validate_or_panic();
        Self {
            inner,
            detector: Detector::new(params, config.alpha),
            config,
            filter_source,
            seen_peers: BTreeSet::new(),
            round_peers: BTreeSet::new(),
            round_rejections: BTreeSet::new(),
            accepted: 0,
            reprieved: 0,
            rejected: 0,
        }
    }

    /// The wrapped embedding node.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Mutable access to the wrapped node (NPS round completion etc.).
    pub fn inner_mut(&mut self) -> &mut E {
        &mut self.inner
    }

    /// The detector (diagnostics).
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Surveyor id whose parameters the filter currently runs on.
    pub fn filter_source(&self) -> usize {
        self.filter_source
    }

    /// Lifetime `(accepted, reprieved, rejected)` step counts.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.accepted, self.reprieved, self.rejected)
    }

    /// Prime the freshly installed filter with the node's own recent
    /// *clean* relative-error history (no testing — the samples predate
    /// the filter).
    ///
    /// The calibrated `(w₀, p₀)` describe the state at the start of an
    /// embedding from scratch; a node that adopts a filter mid-life is
    /// already converged, and without priming the filter would spend its
    /// first tens of steps flagging perfectly normal observations while
    /// `β`-decay catches up.
    pub fn prime(&mut self, recent_clean: &[f64]) {
        for &d in recent_clean {
            self.detector.accept(d);
        }
    }

    /// Vet one embedding step and apply it if it passes (§4.1–4.2).
    pub fn step(&mut self, sample: &PeerSample) -> SecureStep {
        let d = self.inner.probe(sample);
        let verdict = self.detector.evaluate(d);
        self.round_peers.insert(sample.peer);
        let first_time = self.seen_peers.insert(sample.peer);

        if !verdict.suspicious {
            self.detector.accept(d);
            let outcome = self.inner.apply_step(sample);
            self.accepted += 1;
            return SecureStep::Accepted { outcome, verdict };
        }

        // Suspicious. First-time peers may earn a reprieve at the
        // stricter significance e_l·α (a *smaller* α gives a *larger*
        // threshold, i.e. more leniency — and a confident node with a
        // small e_l is the most lenient).
        if self.config.reprieve_enabled && first_time {
            let el = self.inner.local_error().clamp(1e-6, 1.0);
            let alpha2 = (el * self.config.alpha).clamp(1e-9, 1.0 - 1e-9);
            let reprieve_threshold = self.detector.threshold_at(alpha2);
            if verdict.innovation.abs() < reprieve_threshold {
                self.reprieved += 1;
                return SecureStep::Reprieved {
                    verdict,
                    reprieve_threshold,
                };
            }
        }

        self.round_rejections.insert(sample.peer);
        self.rejected += 1;
        SecureStep::Rejected { verdict }
    }

    /// Absorb an embedding step whose probe produced **no measurement**
    /// (lost or timed out): the detector coasts — a Kalman time-update
    /// with no measurement-update — so its innovation statistics widen
    /// honestly instead of going stale. The step is *not* a test: the
    /// peer is neither counted in the round nor marked rejected, and
    /// the embedding is untouched.
    ///
    /// Consecutive missing samples accumulate into the detector's
    /// sample-starvation signal, which [`SecureNode::end_round`] turns
    /// into a [`RoundAction::RefreshFilter`] request.
    pub fn step_missing(&mut self) {
        self.detector.coast();
    }

    /// Close the current embedding round. Returns
    /// [`RoundAction::RefreshFilter`] when at least `refresh_fraction`
    /// of the round's distinct peers were rejected — the signal that the
    /// filter parameters have gone stale — or when the detector is
    /// sample-starved (a long run of missing samples has coasted the
    /// filter to its stationary prior).
    pub fn end_round(&mut self) -> RoundAction {
        let peers = self.round_peers.len();
        let rejected = self.round_rejections.len();
        self.round_peers.clear();
        self.round_rejections.clear();
        if self.detector.starved()
            || (peers > 0 && (rejected as f64) >= (peers as f64) * self.config.refresh_fraction)
        {
            RoundAction::RefreshFilter
        } else {
            RoundAction::Continue
        }
    }

    /// Install fresh filter parameters obtained from Surveyor
    /// `source`.
    pub fn refresh_filter(&mut self, params: StateSpaceParams, source: usize) {
        self.detector.recalibrate(params);
        self.filter_source = source;
    }
}

/// One detection event for the batched vetting sweep: what a single
/// `SecureNode` would have seen at one embedding step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VetEvent {
    /// A measured sample to vet — the batched [`SecureNode::step`].
    Sample(PeerSample),
    /// A lost or timed-out probe — the batched
    /// [`SecureNode::step_missing`].
    Missing,
}

/// Reusable per-column buffers for the vetting sweeps.
#[derive(Debug, Default)]
struct ColumnScratch {
    obs: Vec<f64>,
    active: Vec<bool>,
    accept: Vec<bool>,
    coast: Vec<bool>,
}

impl ColumnScratch {
    fn reset(&mut self, n: usize) {
        self.obs.clear();
        self.obs.resize(n, 0.0);
        self.active.clear();
        self.active.resize(n, false);
        self.accept.clear();
        self.accept.resize(n, false);
        self.coast.clear();
        self.coast.resize(n, false);
    }
}

/// Run one column of events (at most one per node) through the bank:
/// gather observations, one flat predict/evaluate sweep, per-node
/// protocol decisions, then the accept/coast sweeps.
///
/// The decision body deliberately DUPLICATES [`SecureNode::step`] — the
/// bank owns the detector state mid-sweep, so the scalar method cannot
/// be called — and must stay in lockstep with it. The
/// `vet_single_is_bit_identical_to_scalar_steps` test (and the sim
/// crate's golden fingerprints) enforce the equivalence.
fn vet_column<'e, E: Embedding>(
    bank: &mut DetectorBank,
    nodes: &mut [&mut SecureNode<E>],
    event_of: impl Fn(usize) -> Option<&'e VetEvent>,
    scratch: &mut ColumnScratch,
    mut sink: impl FnMut(usize, SecureStep),
) {
    let n = nodes.len();
    scratch.reset(n);
    for (i, node) in nodes.iter_mut().enumerate() {
        match event_of(i) {
            Some(VetEvent::Sample(sample)) => {
                scratch.obs[i] = node.inner.probe(sample);
                scratch.active[i] = true;
            }
            Some(VetEvent::Missing) => scratch.coast[i] = true,
            None => {}
        }
    }
    bank.predict_all();
    let verdicts = bank.evaluate_all(&scratch.obs, &scratch.active);
    for i in 0..n {
        let Some(VetEvent::Sample(sample)) = event_of(i) else {
            continue;
        };
        #[allow(clippy::expect_used)] // same contract as the audit:allow below
        // audit:allow(PANIC01): evaluate_all's contract gives every active slot a verdict; a None here is a bank bug that must fail loudly
        let verdict = verdicts[i].expect("active slot has a verdict");
        let node = &mut *nodes[i];
        node.round_peers.insert(sample.peer);
        let first_time = node.seen_peers.insert(sample.peer);
        if !verdict.suspicious {
            scratch.accept[i] = true;
            let outcome = node.inner.apply_step(sample);
            node.accepted += 1;
            sink(i, SecureStep::Accepted { outcome, verdict });
            continue;
        }
        if node.config.reprieve_enabled && first_time {
            let el = node.inner.local_error().clamp(1e-6, 1.0);
            let alpha2 = (el * node.config.alpha).clamp(1e-9, 1.0 - 1e-9);
            let reprieve_threshold = bank.threshold_at(i, alpha2);
            if verdict.innovation.abs() < reprieve_threshold {
                node.reprieved += 1;
                sink(
                    i,
                    SecureStep::Reprieved {
                        verdict,
                        reprieve_threshold,
                    },
                );
                continue;
            }
        }
        node.round_rejections.insert(sample.peer);
        node.rejected += 1;
        sink(i, SecureStep::Rejected { verdict });
    }
    bank.accept_all(&scratch.obs, &scratch.accept);
    bank.coast_all(&scratch.coast);
}

/// Vet one event per node in a single batched sweep (the Vivaldi tick
/// shape: every participating node tests exactly one peer sample — or
/// coasts — per tick).
///
/// On the exact tier this is **bit-for-bit** the same as calling
/// [`SecureNode::step`] / [`SecureNode::step_missing`] on each node in
/// order: the bank runs the identical per-slot f64 recursions (with the
/// `Q⁻¹(α/2)` factor cached — a pure function, so the product is
/// unchanged) and scatters the state back before returning. The `bank`
/// is caller-owned so its allocations and quantile memo persist across
/// ticks; it is cleared and refilled here.
///
/// Returns one entry per node: `Some(step)` for a `Sample` event,
/// `None` for `Missing` (which, as in the scalar path, produces no
/// step outcome).
pub fn vet_single<E: Embedding>(
    bank: &mut DetectorBank,
    nodes: &mut [&mut SecureNode<E>],
    events: &[VetEvent],
) -> Vec<Option<SecureStep>> {
    assert_eq!(
        nodes.len(),
        events.len(),
        "one event per node: {} nodes vs {} events",
        nodes.len(),
        events.len()
    );
    bank.clear();
    for node in nodes.iter() {
        bank.push(&node.detector);
    }
    let mut out = vec![None; nodes.len()];
    let mut scratch = ColumnScratch::default();
    vet_column(bank, nodes, |i| Some(&events[i]), &mut scratch, |i, step| {
        out[i] = Some(step);
    });
    for (i, node) in nodes.iter_mut().enumerate() {
        bank.store(i, &mut node.detector);
    }
    out
}

/// Vet a per-node *sequence* of events in batched column sweeps (the
/// NPS round shape: each node tests its reference points in order).
/// Column `k` processes event `k` of every node that has one, so a
/// node's events run in sequence — bit-for-bit the scalar order — while
/// the sweep across nodes stays flat.
///
/// Returns, per node, one entry per event (`None` for `Missing`).
pub fn vet_sequences<E: Embedding>(
    bank: &mut DetectorBank,
    nodes: &mut [&mut SecureNode<E>],
    events: &[Vec<VetEvent>],
) -> Vec<Vec<Option<SecureStep>>> {
    assert_eq!(
        nodes.len(),
        events.len(),
        "one event sequence per node: {} nodes vs {} sequences",
        nodes.len(),
        events.len()
    );
    bank.clear();
    for node in nodes.iter() {
        bank.push(&node.detector);
    }
    let mut out: Vec<Vec<Option<SecureStep>>> =
        events.iter().map(|seq| vec![None; seq.len()]).collect();
    let columns = events.iter().map(Vec::len).max().unwrap_or(0);
    let mut scratch = ColumnScratch::default();
    #[allow(clippy::needless_range_loop)] // k cursors jagged per-node sequences, not one slice
    for k in 0..columns {
        vet_column(bank, nodes, |i| events[i].get(k), &mut scratch, |i, step| {
            out[i][k] = Some(step);
        });
    }
    for (i, node) in nodes.iter_mut().enumerate() {
        bank.store(i, &mut node.detector);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_coord::{Coordinate, Space};

    /// A minimal embedding: fixed coordinate, configurable local error;
    /// lets the tests isolate protocol behavior from geometry.
    #[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
    struct StubEmbedding {
        coordinate: Coordinate,
        local_error: f64,
        applied: Vec<usize>,
    }

    impl StubEmbedding {
        fn new(local_error: f64) -> Self {
            Self {
                coordinate: Coordinate::origin(Space::with_height(2)),
                local_error,
                applied: Vec::new(),
            }
        }
    }

    impl Embedding for StubEmbedding {
        fn coordinate(&self) -> &Coordinate {
            &self.coordinate
        }
        fn local_error(&self) -> f64 {
            self.local_error
        }
        fn apply_step(&mut self, sample: &PeerSample) -> StepOutcome {
            self.applied.push(sample.peer);
            StepOutcome {
                relative_error: 0.0,
                local_error: self.local_error,
                moved: true,
            }
        }
    }

    fn params() -> StateSpaceParams {
        StateSpaceParams {
            beta: 0.8,
            v_w: 0.001,
            v_u: 0.001,
            w_bar: 0.02,
            w0: 0.1,
            p0: 0.01,
        }
    }

    /// A sample whose probe yields relative error ≈ `d` against the stub
    /// at the origin: put the peer at distance `est` with rtt chosen so
    /// |est − rtt|/rtt = d (overestimation form: est = rtt(1+d)).
    fn sample_with_error(peer: usize, d: f64) -> PeerSample {
        let rtt = 50.0;
        let est = rtt * (1.0 + d);
        PeerSample {
            peer,
            peer_coord: Coordinate::new(vec![est, 0.0], 0.0),
            peer_error: 0.2,
            rtt_ms: rtt,
        }
    }

    fn secure(local_error: f64) -> SecureNode<StubEmbedding> {
        SecureNode::new(
            StubEmbedding::new(local_error),
            params(),
            0,
            SecurityConfig::paper_default(),
        )
    }

    #[test]
    fn nominal_steps_are_accepted_and_applied() {
        let mut node = secure(0.1);
        let s = sample_with_error(1, 0.1); // close to the filter's state
        let step = node.step(&s);
        assert!(step.accepted(), "verdict: {:?}", step.verdict());
        assert_eq!(node.inner().applied, vec![1]);
        assert_eq!(node.counts(), (1, 0, 0));
    }

    #[test]
    fn wild_steps_from_known_peers_are_rejected() {
        let mut node = secure(0.1);
        // Make peer 2 known with a good step first.
        node.step(&sample_with_error(2, 0.1));
        let step = node.step(&sample_with_error(2, 5.0));
        assert!(step.replace_peer());
        assert_eq!(node.inner().applied, vec![2], "bad step must not apply");
        assert_eq!(node.counts().2, 1);
    }

    #[test]
    fn first_time_peer_with_moderate_deviation_gets_reprieved() {
        // A converged node (tiny e_l) is lenient with joining peers: the
        // secondary threshold at e_l·α is much wider.
        let mut node = secure(0.01);
        // Suspicious at α = 5% but inside the (e_l·α)-threshold.
        let primary_t = node.detector().prediction().threshold;
        let secondary_t = node.detector().threshold_at(0.01 * 0.05);
        assert!(secondary_t > primary_t);
        // Find a deviation between the two thresholds: innovation is
        // (d − predicted); predicted starts at w0-ish. Use d = predicted
        // + 1.5·primary_t.
        let predicted = node.detector().prediction().predicted;
        let d = predicted + (primary_t + secondary_t) / 2.0;
        let step = node.step(&sample_with_error(7, d));
        match step {
            SecureStep::Reprieved { .. } => {}
            other => panic!("expected reprieve, got {other:?}"),
        }
        assert!(node.inner().applied.is_empty(), "reprieve still aborts");
        assert_eq!(node.counts(), (0, 1, 0));
    }

    #[test]
    fn reprieve_only_granted_once_per_peer() {
        let mut node = secure(0.01);
        let outlook = node.detector().prediction();
        let secondary_t = node.detector().threshold_at(0.01 * 0.05);
        let d = outlook.predicted + (outlook.threshold + secondary_t) / 2.0;
        let first = node.step(&sample_with_error(7, d));
        assert!(matches!(first, SecureStep::Reprieved { .. }));
        let second = node.step(&sample_with_error(7, d));
        assert!(
            second.replace_peer(),
            "second suspicious step from the same peer must reject"
        );
    }

    #[test]
    fn unconfident_node_grants_fewer_reprieves() {
        // With e_l = 1 the secondary test equals the primary test, so a
        // step that failed the primary also fails the reprieve.
        let mut node = secure(1.0);
        let outlook = node.detector().prediction();
        let d = outlook.predicted + outlook.threshold * 1.5;
        let step = node.step(&sample_with_error(3, d));
        assert!(step.replace_peer(), "e_l = 1 leaves no reprieve headroom");
    }

    #[test]
    fn blatant_lies_are_rejected_even_first_time() {
        let mut node = secure(0.01);
        let step = node.step(&sample_with_error(4, 50.0));
        assert!(step.replace_peer());
    }

    #[test]
    fn reprieve_can_be_disabled() {
        let mut config = SecurityConfig::paper_default();
        config.reprieve_enabled = false;
        let mut node = SecureNode::new(StubEmbedding::new(0.01), params(), 0, config);
        let outlook = node.detector().prediction();
        let secondary_t = node.detector().threshold_at(0.01 * 0.05);
        let d = outlook.predicted + (outlook.threshold + secondary_t) / 2.0;
        let step = node.step(&sample_with_error(7, d));
        assert!(step.replace_peer(), "no reprieve when disabled");
    }

    #[test]
    fn round_with_majority_rejections_triggers_refresh() {
        let mut node = secure(1.0);
        // Two peers accepted, two rejected → exactly half → refresh.
        node.step(&sample_with_error(1, 0.1));
        node.step(&sample_with_error(2, 0.1));
        node.step(&sample_with_error(3, 50.0));
        node.step(&sample_with_error(4, 50.0));
        assert_eq!(node.end_round(), RoundAction::RefreshFilter);
        // Counters reset for the next round.
        node.step(&sample_with_error(5, 0.1));
        assert_eq!(node.end_round(), RoundAction::Continue);
    }

    #[test]
    fn quiet_round_continues() {
        let mut node = secure(1.0);
        for peer in 0..6 {
            node.step(&sample_with_error(peer, 0.1));
        }
        node.step(&sample_with_error(99, 50.0)); // 1 of 7 rejected
        assert_eq!(node.end_round(), RoundAction::Continue);
    }

    #[test]
    fn refresh_filter_swaps_source_and_state() {
        let mut node = secure(1.0);
        for _ in 0..5 {
            node.step(&sample_with_error(1, 0.1));
        }
        assert_eq!(node.filter_source(), 0);
        node.refresh_filter(params(), 42);
        assert_eq!(node.filter_source(), 42);
        assert_eq!(node.detector().filter().updates(), 0);
    }

    #[test]
    fn validate_returns_typed_errors() {
        let mut config = SecurityConfig::paper_default();
        assert_eq!(config.validate(), Ok(()));
        config.alpha = 1.5;
        assert_eq!(config.validate(), Err(ConfigError::InvalidAlpha(1.5)));
        config.alpha = 0.05;
        config.refresh_fraction = 0.0;
        assert_eq!(
            config.validate(),
            Err(ConfigError::InvalidRefreshFraction(0.0))
        );
        let msg = config.validate().unwrap_err().to_string();
        assert!(msg.contains("refresh_fraction"), "message: {msg}");
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1)")]
    fn validate_or_panic_still_panics() {
        SecurityConfig {
            alpha: 0.0,
            ..SecurityConfig::paper_default()
        }
        .validate_or_panic();
    }

    #[test]
    fn missing_samples_coast_without_touching_round_state() {
        let mut node = secure(0.1);
        node.step(&sample_with_error(1, 0.1));
        let threshold_before = node.detector().prediction().threshold;
        for _ in 0..10 {
            node.step_missing();
        }
        let threshold_after = node.detector().prediction().threshold;
        assert!(
            threshold_after > threshold_before,
            "coasting widens the test band"
        );
        assert!(node.inner().applied == vec![1], "embedding untouched");
        assert_eq!(node.counts(), (1, 0, 0), "no step outcome recorded");
        // 1 tested peer, 0 rejections, starvation below the limit.
        assert_eq!(node.end_round(), RoundAction::Continue);
    }

    #[test]
    fn sample_starvation_requests_filter_refresh() {
        use crate::detector::SAMPLE_STARVATION_LIMIT;
        let mut node = secure(0.1);
        for _ in 0..SAMPLE_STARVATION_LIMIT {
            node.step_missing();
        }
        assert_eq!(
            node.end_round(),
            RoundAction::RefreshFilter,
            "a starved detector must ask for recalibration"
        );
        // Installing fresh parameters clears the starvation state.
        node.refresh_filter(params(), 9);
        node.step(&sample_with_error(1, 0.1));
        assert_eq!(node.end_round(), RoundAction::Continue);
    }

    #[test]
    fn accepted_fraction_on_clean_stream_is_high() {
        // End-to-end sanity: a stream of nominal errors drawn from the
        // model itself should be overwhelmingly accepted.
        let p = params();
        let mut rng = ices_stats::rng::stream_rng(30, 0);
        let trace = p.simulate(2000, &mut rng);
        let mut node = secure(0.3);
        let mut accepted = 0usize;
        for (i, &d) in trace.iter().enumerate() {
            if node.step(&sample_with_error(i % 64, d.max(0.0))).accepted() {
                accepted += 1;
            }
        }
        let rate = accepted as f64 / trace.len() as f64;
        assert!(rate > 0.9, "acceptance rate {rate}");
    }

    /// One mixed event per node per tick: the batched sweep must leave
    /// every node — detector state, counters, applied steps, round
    /// bookkeeping — exactly where the scalar calls leave it, and
    /// return the same step outcomes.
    #[test]
    fn vet_single_is_bit_identical_to_scalar_steps() {
        let n = 6;
        let mut scalar: Vec<SecureNode<StubEmbedding>> =
            (0..n).map(|i| secure(0.01 + 0.15 * i as f64)).collect();
        let mut batched = scalar.clone();
        let mut bank = DetectorBank::with_tier(false);
        for tick in 0..30 {
            let events: Vec<VetEvent> = (0..n)
                .map(|i| match (tick + i) % 7 {
                    0 => VetEvent::Missing,
                    // A blatant lie from a never-seen peer (reject even
                    // with the reprieve check engaged).
                    1 => VetEvent::Sample(sample_with_error(100 + tick, 50.0)),
                    // A moderate deviation from a fresh peer (reprieve
                    // candidate on confident nodes).
                    2 => VetEvent::Sample(sample_with_error(200 + tick, 0.6)),
                    _ => VetEvent::Sample(sample_with_error(i, 0.1)),
                })
                .collect();
            let scalar_steps: Vec<Option<SecureStep>> = scalar
                .iter_mut()
                .zip(&events)
                .map(|(node, event)| match event {
                    VetEvent::Sample(s) => Some(node.step(s)),
                    VetEvent::Missing => {
                        node.step_missing();
                        None
                    }
                })
                .collect();
            let mut refs: Vec<&mut SecureNode<StubEmbedding>> = batched.iter_mut().collect();
            let batched_steps = vet_single(&mut bank, &mut refs, &events);
            assert_eq!(scalar_steps, batched_steps, "tick {tick}");
        }
        for (i, (s, b)) in scalar.iter_mut().zip(batched.iter_mut()).enumerate() {
            assert_eq!(s.detector(), b.detector(), "node {i} detector state");
            assert_eq!(s.counts(), b.counts(), "node {i} counters");
            assert_eq!(s.inner().applied, b.inner().applied, "node {i} applied");
            assert_eq!(s.end_round(), b.end_round(), "node {i} round action");
        }
    }

    /// The NPS shape: per-node event sequences of different lengths,
    /// vetted column-by-column — same bit-identity requirement.
    #[test]
    fn vet_sequences_is_bit_identical_to_scalar_steps() {
        let n = 5;
        let mut scalar: Vec<SecureNode<StubEmbedding>> =
            (0..n).map(|i| secure(0.02 + 0.2 * i as f64)).collect();
        let mut batched = scalar.clone();
        let mut bank = DetectorBank::with_tier(false);
        for round in 0..12 {
            let events: Vec<Vec<VetEvent>> = (0..n)
                .map(|i| {
                    (0..(i % 3) + 2)
                        .map(|k| match (round + i + k) % 5 {
                            0 => VetEvent::Missing,
                            1 => VetEvent::Sample(sample_with_error(300 + round * 8 + k, 50.0)),
                            _ => VetEvent::Sample(sample_with_error(k, 0.12)),
                        })
                        .collect()
                })
                .collect();
            let scalar_steps: Vec<Vec<Option<SecureStep>>> = scalar
                .iter_mut()
                .zip(&events)
                .map(|(node, seq)| {
                    seq.iter()
                        .map(|event| match event {
                            VetEvent::Sample(s) => Some(node.step(s)),
                            VetEvent::Missing => {
                                node.step_missing();
                                None
                            }
                        })
                        .collect()
                })
                .collect();
            let mut refs: Vec<&mut SecureNode<StubEmbedding>> = batched.iter_mut().collect();
            let batched_steps = vet_sequences(&mut bank, &mut refs, &events);
            assert_eq!(scalar_steps, batched_steps, "round {round}");
            for (i, (s, b)) in scalar.iter_mut().zip(batched.iter_mut()).enumerate() {
                assert_eq!(s.end_round(), b.end_round(), "round {round} node {i}");
            }
        }
        for (i, (s, b)) in scalar.iter().zip(batched.iter()).enumerate() {
            assert_eq!(s.detector(), b.detector(), "node {i} detector state");
            assert_eq!(s.counts(), b.counts(), "node {i} counters");
        }
    }

    #[test]
    fn vet_single_handles_empty_node_sets() {
        let mut bank = DetectorBank::with_tier(false);
        let mut refs: Vec<&mut SecureNode<StubEmbedding>> = Vec::new();
        let out = vet_single(&mut bank, &mut refs, &[]);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "one event per node")]
    fn vet_single_rejects_misaligned_events() {
        let mut node = secure(0.1);
        let mut bank = DetectorBank::with_tier(false);
        let mut refs = vec![&mut node];
        let _ = vet_single(&mut bank, &mut refs, &[]);
    }
}
