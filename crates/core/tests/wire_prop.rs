//! Property tests for the service wire codec (`ices_core::wire`):
//! encode→decode identity across every message type, plus a
//! malformed-datagram suite — truncations, corruptions, oversize,
//! wrong-version and pure garbage — asserting the decoder answers with
//! a typed [`WireError`] (or a harmless reinterpretation) and never
//! panics. The daemon feeds every received datagram through `decode`,
//! so this suite is the fuzz harness for its attack surface.

use ices_core::wire::{decode, encode, Disposition, Message, WireError, MAX_DATAGRAM, WIRE_VERSION};
use ices_core::{CoordinateCertificate, StateSpaceParams};
use ices_coord::Coordinate;
use proptest::prelude::*;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tiny deterministic draw chain so one `(seed, selector)` pair maps to
/// one fully-elaborated message of the selected type.
struct Draw {
    state: u64,
}

impl Draw {
    fn new(seed: u64) -> Self {
        Draw {
            state: splitmix64(seed),
        }
    }

    fn u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// A finite float in roughly [-1000, 1000].
    fn f64(&mut self) -> f64 {
        (self.u64() % 2_000_001) as f64 / 1000.0 - 1000.0
    }

    /// A finite non-negative float in [0, 1000].
    fn pos_f64(&mut self) -> f64 {
        (self.u64() % 1_000_001) as f64 / 1000.0
    }

    fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    fn coordinate(&mut self) -> Coordinate {
        let dims = (self.u64() % 16 + 1) as usize;
        let position: Vec<f64> = (0..dims).map(|_| self.f64()).collect();
        Coordinate::new(position, self.pos_f64())
    }

    fn params(&mut self) -> StateSpaceParams {
        StateSpaceParams {
            beta: self.f64(),
            v_w: self.f64(),
            v_u: self.f64(),
            w_bar: self.f64(),
            w0: self.f64(),
            p0: self.f64(),
        }
    }

    fn certificate(&mut self) -> CoordinateCertificate {
        CoordinateCertificate {
            node: (self.u64() % (u32::MAX as u64)) as usize,
            coordinate: self.coordinate(),
            issuer: (self.u64() % (u32::MAX as u64)) as usize,
            issued_at: self.u64(),
            ttl: self.u64(),
            tag: self.u64(),
        }
    }

    fn opt_certificate(&mut self) -> Option<CoordinateCertificate> {
        if self.bool() {
            Some(self.certificate())
        } else {
            None
        }
    }

    fn disposition(&mut self) -> Disposition {
        match self.u64() % 5 {
            0 => Disposition::Accepted,
            1 => Disposition::Reprieved,
            2 => Disposition::Rejected,
            3 => Disposition::BadCertificate,
            _ => Disposition::NotReady,
        }
    }

    /// A counter list within the wire caps, in the `ices-obs`
    /// `crate.name` naming style.
    fn counters(&mut self) -> Vec<(String, u64)> {
        let n = (self.u64() % 48) as usize;
        (0..n)
            .map(|i| (format!("svc.counter_{i}"), self.u64()))
            .collect()
    }
}

/// One message of each wire type, elaborated from the draw chain. The
/// selector covers every `Message` variant; extending the enum without
/// extending this constructor fails the exhaustiveness count test below.
fn build_message(seed: u64, selector: u8) -> Message {
    let mut d = Draw::new(seed);
    match selector {
        0 => Message::ProbeRequest { nonce: d.u64() },
        1 => Message::ProbeReply {
            nonce: d.u64(),
            coordinate: d.coordinate(),
            local_error: d.pos_f64(),
            certificate: d.opt_certificate(),
        },
        2 => Message::CalibrationRequest {
            node: d.u64(),
            coordinate: if d.bool() { Some(d.coordinate()) } else { None },
        },
        3 => Message::CalibrationReply {
            surveyor: d.u64(),
            params: d.params(),
            issued_at: d.u64(),
        },
        4 => Message::SurveyorRegister {
            surveyor: d.u64(),
            coordinate: d.coordinate(),
            params: d.params(),
        },
        5 => Message::RegisterAck {
            surveyor: d.u64(),
            registered: d.bool(),
        },
        6 => Message::UpdateClaim {
            client: d.u64(),
            nonce: d.u64(),
            coordinate: d.coordinate(),
            peer_error: d.pos_f64(),
            rtt_ms: d.pos_f64() + 0.001,
            certificate: d.opt_certificate(),
        },
        7 => Message::UpdateVerdict {
            nonce: d.u64(),
            disposition: d.disposition(),
            innovation: d.f64(),
            threshold: d.f64(),
        },
        8 => Message::StatsRequest,
        9 => Message::StatsReply {
            counters: d.counters(),
        },
        10 => Message::Shutdown { token: d.u64() },
        _ => Message::Error {
            code: (d.u64() % 256) as u8,
        },
    }
}

/// Number of distinct selector values `build_message` elaborates.
const SELECTORS: u8 = 12;

#[test]
fn selector_space_covers_every_variant() {
    use std::collections::BTreeSet;
    let names: BTreeSet<&'static str> = (0..SELECTORS)
        .map(|s| match build_message(7, s) {
            Message::ProbeRequest { .. } => "ProbeRequest",
            Message::ProbeReply { .. } => "ProbeReply",
            Message::CalibrationRequest { .. } => "CalibrationRequest",
            Message::CalibrationReply { .. } => "CalibrationReply",
            Message::SurveyorRegister { .. } => "SurveyorRegister",
            Message::RegisterAck { .. } => "RegisterAck",
            Message::UpdateClaim { .. } => "UpdateClaim",
            Message::UpdateVerdict { .. } => "UpdateVerdict",
            Message::StatsRequest => "StatsRequest",
            Message::StatsReply { .. } => "StatsReply",
            Message::Shutdown { .. } => "Shutdown",
            Message::Error { .. } => "Error",
        })
        .collect();
    assert_eq!(names.len(), 12, "a Message variant is unreachable: {names:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode→decode is the identity for every message type.
    #[test]
    fn encode_decode_round_trips(seed in 0u64..u64::MAX, selector in 0u8..SELECTORS) {
        let msg = build_message(seed, selector);
        let bytes = encode(&msg).unwrap_or_else(|e| panic!("encode failed: {e} for {msg:?}"));
        prop_assert!(bytes.len() <= MAX_DATAGRAM);
        prop_assert!(bytes.first() == Some(&WIRE_VERSION));
        let back = decode(&bytes);
        prop_assert_eq!(back, Ok(msg));
    }

    /// Every strict prefix of a valid datagram fails with a typed
    /// error — the decoder never reads past the buffer and never
    /// accepts an incomplete payload.
    #[test]
    fn every_truncation_is_rejected(seed in 0u64..u64::MAX, selector in 0u8..SELECTORS) {
        let msg = build_message(seed, selector);
        let bytes = encode(&msg).unwrap_or_else(|e| panic!("encode failed: {e}"));
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]);
            prop_assert!(r.is_err(), "prefix of {} bytes decoded to {:?}", cut, r);
        }
    }

    /// Corrupting any single byte of a valid datagram never panics the
    /// decoder; whatever it yields is a typed error or a (different)
    /// well-formed message.
    #[test]
    fn single_byte_corruption_never_panics(
        seed in 0u64..u64::MAX,
        selector in 0u8..SELECTORS,
        at_raw in 0usize..4096,
        xor in 1u8..255,
    ) {
        let msg = build_message(seed, selector);
        let mut bytes = encode(&msg).unwrap_or_else(|e| panic!("encode failed: {e}"));
        let at = at_raw % bytes.len();
        bytes[at] ^= xor;
        let _ = decode(&bytes); // must return, not panic
    }

    /// Pure garbage of any length up to the datagram cap decodes to a
    /// typed result without panicking; a flipped version byte is
    /// always refused outright.
    #[test]
    fn garbage_never_panics(raw in proptest::collection::vec(0u8..255, 0..300)) {
        let _ = decode(&raw);
        let mut wrong_version = raw.clone();
        match wrong_version.first().copied() {
            Some(v) if v != WIRE_VERSION => {
                prop_assert_eq!(decode(&wrong_version), Err(WireError::BadVersion(v)));
            }
            Some(_) => {
                wrong_version[0] = WIRE_VERSION.wrapping_add(1);
                prop_assert_eq!(
                    decode(&wrong_version),
                    Err(WireError::BadVersion(WIRE_VERSION.wrapping_add(1)))
                );
            }
            None => prop_assert_eq!(decode(&wrong_version), Err(WireError::Truncated)),
        }
    }
}

#[test]
fn oversized_datagrams_are_refused_before_parsing() {
    // Even a datagram that starts like a valid message is refused once
    // it exceeds the cap — the daemon's receive buffer is sized to
    // MAX_DATAGRAM + 1 so oversize is detectable, not silently split.
    let mut huge = vec![0u8; MAX_DATAGRAM + 1];
    huge[0] = WIRE_VERSION;
    huge[1] = 1; // ProbeRequest tag
    assert_eq!(decode(&huge), Err(WireError::Oversized));
}
