//! Property-based tests of the core invariants: the Kalman filter's
//! variance algebra, the detector's monotonicity, and the EM
//! calibration's contracts — over randomized parameters and traces.

use ices_core::{calibrate, Detector, EmConfig, KalmanFilter, StateSpaceParams};
use proptest::prelude::*;

/// Strategy for valid state-space parameters.
fn params_strategy() -> impl Strategy<Value = StateSpaceParams> {
    (
        -0.95f64..0.95,   // beta
        1e-5f64..0.05,    // v_w
        1e-5f64..0.05,    // v_u
        -0.1f64..0.2,     // w_bar
        0.0f64..1.0,      // w0
        1e-4f64..0.5,     // p0
    )
        .prop_map(|(beta, v_w, v_u, w_bar, w0, p0)| StateSpaceParams {
            beta,
            v_w,
            v_u,
            w_bar,
            w0,
            p0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn posterior_variance_below_prior_and_observation_noise(
        p in params_strategy(),
        obs in proptest::collection::vec(-2f64..3.0, 1..80),
    ) {
        let mut f = KalmanFilter::new(p);
        for &d in &obs {
            let pred = f.predict();
            f.update(d);
            // Conditioning on an observation can only reduce uncertainty.
            prop_assert!(f.variance() <= pred.state_variance + 1e-15);
            prop_assert!(f.variance() <= p.v_u + 1e-15);
            prop_assert!(f.variance() > 0.0);
        }
    }

    #[test]
    fn innovation_variance_always_exceeds_observation_noise(
        p in params_strategy(),
        obs in proptest::collection::vec(-2f64..3.0, 1..50),
    ) {
        let mut f = KalmanFilter::new(p);
        for &d in &obs {
            let pred = f.predict();
            prop_assert!(pred.innovation_variance >= p.v_u);
            prop_assert!(pred.innovation_variance.is_finite());
            f.update(d);
        }
    }

    #[test]
    fn estimate_moves_toward_the_observation(
        p in params_strategy(),
        obs in -2f64..3.0,
    ) {
        let mut f = KalmanFilter::new(p);
        let pred = f.predict();
        f.update(obs);
        // The posterior lies strictly between prediction and observation
        // (Kalman gain ∈ (0, 1) because both variances are positive).
        let lo = pred.predicted.min(obs) - 1e-12;
        let hi = pred.predicted.max(obs) + 1e-12;
        prop_assert!(f.estimate() >= lo && f.estimate() <= hi);
    }

    #[test]
    fn variance_converges_to_a_fixed_point(
        p in params_strategy(),
    ) {
        let mut f = KalmanFilter::new(p);
        for _ in 0..500 {
            f.update(p.w0);
        }
        let settled = f.variance();
        f.update(p.w0);
        prop_assert!((f.variance() - settled).abs() < 1e-9,
            "variance must settle: {settled} -> {}", f.variance());
    }

    #[test]
    fn detector_threshold_monotone_in_alpha(
        p in params_strategy(),
        obs in proptest::collection::vec(-1f64..2.0, 0..30),
    ) {
        let mut d = Detector::new(p, 0.05);
        for &x in &obs {
            d.accept(x);
        }
        let mut prev = f64::INFINITY;
        for alpha in [0.001, 0.01, 0.05, 0.2, 0.5] {
            let t = d.threshold_at(alpha);
            prop_assert!(t < prev, "threshold must shrink as α grows");
            prop_assert!(t > 0.0);
            prev = t;
        }
    }

    #[test]
    fn verdict_is_consistent_with_threshold(
        p in params_strategy(),
        obs in -3f64..4.0,
    ) {
        let d = Detector::new(p, 0.05);
        let v = d.evaluate(obs);
        prop_assert_eq!(v.suspicious, v.innovation.abs() >= v.threshold);
        prop_assert!((v.innovation - (obs - v.predicted)).abs() < 1e-12);
    }

    #[test]
    fn rejected_observations_never_change_state(
        p in params_strategy(),
        warm in proptest::collection::vec(-0.2f64..0.8, 5..40),
    ) {
        let mut d = Detector::new(p, 0.05);
        for &x in &warm {
            d.accept(x);
        }
        let before = d.filter().clone();
        // An observation guaranteed beyond any plausible threshold.
        let v = d.assess(1e6);
        prop_assert!(v.suspicious);
        prop_assert_eq!(d.filter(), &before);
    }

    #[test]
    fn em_always_returns_a_valid_stationary_model(
        p in params_strategy(),
        seed in 0u64..1000,
        n in 60usize..300,
    ) {
        let mut rng = ices_stats::rng::stream_rng(seed, 0);
        let trace = p.simulate(n, &mut rng);
        let out = calibrate(&trace, StateSpaceParams::em_initial_guess(), &EmConfig::default());
        out.params.validate(); // must not panic
        prop_assert!(out.iterations >= 1);
        prop_assert!(!out.log_likelihood.is_empty());
        for w in out.log_likelihood.windows(2) {
            prop_assert!(
                w[1] >= w[0] - 1e-6 * w[0].abs().max(1.0),
                "EM log-likelihood decreased: {} -> {}", w[0], w[1]
            );
        }
    }

    #[test]
    fn run_trace_is_pure(
        p in params_strategy(),
        obs in proptest::collection::vec(-1f64..2.0, 1..60),
    ) {
        let a = KalmanFilter::run_trace(p, &obs);
        let b = KalmanFilter::run_trace(p, &obs);
        prop_assert_eq!(a, b);
    }
}
