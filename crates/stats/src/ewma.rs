//! Exponentially weighted moving average.
//!
//! Vivaldi maintains a per-node *local error* `e_l` as an EWMA of observed
//! relative errors, and the paper's detection protocol (§4.2) reuses that
//! `e_l` to scale the reprieve significance level `e_l · α` granted to
//! first-time peers.

use serde::{Deserialize, Serialize};

/// An exponentially weighted moving average with fixed smoothing factor.
///
/// After observing `x`, the value becomes `α·x + (1−α)·value`. Until the
/// first observation the EWMA reports its configured initial value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    initialized: bool,
}

impl Ewma {
    /// Create an EWMA with smoothing factor `alpha ∈ (0, 1]` that reports
    /// `initial` until the first sample arrives.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64, initial: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Self {
            alpha,
            value: initial,
            initialized: false,
        }
    }

    /// Observe a new sample and return the updated average.
    ///
    /// The first sample replaces the initial value outright, so the
    /// configured starting point does not bias long-run estimates.
    pub fn update(&mut self, x: f64) -> f64 {
        if self.initialized {
            self.value = self.alpha * x + (1.0 - self.alpha) * self.value;
        } else {
            self.value = x;
            self.initialized = true;
        }
        self.value
    }

    /// Current average.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Whether at least one sample has been observed.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// Vivaldi-style *weighted* moving average where the per-sample weight is
/// supplied by the caller (Vivaldi weights by the sample balance
/// `w = e_l / (e_l + e_peer)`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedEwma {
    value: f64,
    initialized: bool,
}

impl WeightedEwma {
    /// Create a weighted EWMA reporting `initial` until the first sample.
    pub fn new(initial: f64) -> Self {
        Self {
            value: initial,
            initialized: false,
        }
    }

    /// Observe `x` with weight `w ∈ [0, 1]` scaled by constant `ce`.
    ///
    /// The effective smoothing factor is `ce · w`, matching Vivaldi's
    /// `e_l = es·ce·w + e_l·(1 − ce·w)` update.
    ///
    /// # Panics
    /// Panics if the effective factor leaves `[0, 1]`.
    pub fn update(&mut self, x: f64, w: f64, ce: f64) -> f64 {
        let a = ce * w;
        assert!(
            (0.0..=1.0).contains(&a),
            "effective EWMA factor must be in [0, 1], got {a}"
        );
        if self.initialized {
            self.value = x * a + self.value * (1.0 - a);
        } else {
            self.value = x;
            self.initialized = true;
        }
        self.value
    }

    /// Current average.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Whether at least one sample has been observed.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_sample_replaces_initial() {
        let mut e = Ewma::new(0.1, 1.0);
        assert_eq!(e.value(), 1.0);
        assert!(!e.is_initialized());
        e.update(0.2);
        assert_eq!(e.value(), 0.2);
        assert!(e.is_initialized());
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.25, 0.0);
        for _ in 0..200 {
            e.update(3.5);
        }
        assert!((e.value() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0, 0.0);
        for x in [1.0, -2.0, 7.5] {
            assert_eq!(e.update(x), x);
        }
    }

    #[test]
    fn known_sequence() {
        let mut e = Ewma::new(0.5, 0.0);
        e.update(4.0); // 4.0
        e.update(0.0); // 2.0
        e.update(2.0); // 2.0
        assert!((e.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "EWMA alpha must be in (0, 1]")]
    fn rejects_zero_alpha() {
        Ewma::new(0.0, 0.0);
    }

    #[test]
    fn weighted_matches_vivaldi_update() {
        let mut e = WeightedEwma::new(1.0);
        e.update(0.4, 1.0, 0.25); // first sample: takes value
        assert_eq!(e.value(), 0.4);
        let v = e.update(0.8, 0.5, 0.25); // a = 0.125
        assert!((v - (0.8 * 0.125 + 0.4 * 0.875)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn stays_within_sample_hull(
            alpha in 0.01f64..1.0,
            xs in proptest::collection::vec(-100f64..100.0, 1..50),
        ) {
            let mut e = Ewma::new(alpha, 0.0);
            for &x in &xs { e.update(x); }
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(e.value() >= lo - 1e-9 && e.value() <= hi + 1e-9);
        }

        #[test]
        fn weighted_stays_within_hull(
            xs in proptest::collection::vec((0f64..10.0, 0f64..1.0), 1..50),
        ) {
            let mut e = WeightedEwma::new(0.0);
            for &(x, w) in &xs { e.update(x, w, 0.25); }
            let lo = xs.iter().map(|&(x, _)| x).fold(f64::INFINITY, f64::min);
            let hi = xs.iter().map(|&(x, _)| x).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(e.value() >= lo - 1e-9 && e.value() <= hi + 1e-9);
        }
    }
}
