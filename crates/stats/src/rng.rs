//! Deterministic seed derivation.
//!
//! Every experiment in this workspace is driven by a single `u64` master
//! seed. Each simulated node, each link, and each attack component derives
//! its own independent stream from `(master, stream-id)` pairs via a
//! SplitMix64 mix, so that adding instrumentation or reordering node
//! updates never perturbs unrelated random draws.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mix a 64-bit value with the SplitMix64 finalizer.
///
/// This is the standard avalanche mix from Steele et al.; any single-bit
/// change in the input flips each output bit with probability ~1/2.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child seed from a master seed and a stream identifier.
pub fn derive(master: u64, stream: u64) -> u64 {
    splitmix64(master ^ splitmix64(stream))
}

/// Derive a child seed from a master seed and two stream identifiers
/// (e.g. a node id and an epoch).
pub fn derive2(master: u64, a: u64, b: u64) -> u64 {
    derive(derive(master, a), b)
}

/// Construct a seeded [`StdRng`] for the given `(master, stream)` pair.
pub fn stream_rng(master: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive(master, stream))
}

/// Construct a seeded [`StdRng`] for the given `(master, a, b)` triple.
pub fn stream_rng2(master: u64, a: u64, b: u64) -> StdRng {
    StdRng::seed_from_u64(derive2(master, a, b))
}

/// A small, cloneable, serializable PRNG for per-node simulation state.
///
/// Xoshiro256++ seeded through SplitMix64 (the reference seeding
/// procedure). Unlike [`StdRng`] it implements `Clone` and serde, which
/// node state needs (nodes are snapshotted and stored in experiment
/// results). Not cryptographic — none of the simulation requires that.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed from a single `u64` via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(z);
        }
        // Xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }

    /// Seed from a `(master, a, b)` stream triple.
    pub fn from_stream(master: u64, a: u64, b: u64) -> Self {
        Self::seed_from_u64(derive2(master, a, b))
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2n = s2 ^ s0;
        let mut s3n = s3 ^ s1;
        let s1n = s1 ^ s2n;
        let s0n = s0 ^ s3n;
        s2n ^= t;
        s3n = s3n.rotate_left(45);
        self.s = [s0n, s1n, s2n, s3n];
        result
    }
}

// In rand 0.10, implementing `TryRng` with an infallible error provides
// the `Rng` word-generator trait through a blanket impl.
impl rand::TryRng for SimRng {
    type Error = std::convert::Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok((self.next() >> 32) as u32)
    }

    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(self.next())
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error> {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn splitmix_known_vector() {
        // First output of the SplitMix64 reference sequence seeded with 0.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive(42, 7), derive(42, 7));
        assert_eq!(derive2(42, 7, 3), derive2(42, 7, 3));
    }

    #[test]
    fn different_streams_differ() {
        let a = derive(42, 0);
        let b = derive(42, 1);
        let c = derive(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn streams_produce_distinct_sequences() {
        let mut r0 = stream_rng(99, 0);
        let mut r1 = stream_rng(99, 1);
        let s0: Vec<u64> = (0..8).map(|_| r0.random()).collect();
        let s1: Vec<u64> = (0..8).map(|_| r1.random()).collect();
        assert_ne!(s0, s1);
    }

    #[test]
    fn same_stream_reproduces_sequence() {
        let mut a = stream_rng2(7, 1, 2);
        let mut b = stream_rng2(7, 1, 2);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn sim_rng_is_deterministic_and_cloneable() {
        let mut a = SimRng::from_stream(1, 2, 3);
        let mut b = a.clone();
        use rand::Rng as _;
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn sim_rng_uniform_f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(9);
        let mut s = crate::OnlineStats::new();
        for _ in 0..50_000 {
            let x: f64 = r.random();
            s.push(x);
        }
        assert!(s.min() >= 0.0 && s.max() < 1.0);
        assert!((s.mean() - 0.5).abs() < 0.01, "mean = {}", s.mean());
        assert!((s.variance() - 1.0 / 12.0).abs() < 0.005);
    }

    #[test]
    fn sim_rng_serde_roundtrip_preserves_stream() {
        let mut a = SimRng::seed_from_u64(4);
        use rand::Rng as _;
        a.next_u64();
        let json = serde_json::to_string(&a).expect("serialize");
        let mut b: SimRng = serde_json::from_str(&json).expect("deserialize");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn sim_rng_zero_seed_not_degenerate() {
        let mut r = SimRng::seed_from_u64(0);
        use rand::Rng as _;
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vals.len(), "outputs should not repeat");
    }

    #[test]
    fn sim_rng_fill_bytes_partial_chunk() {
        let mut r = SimRng::seed_from_u64(5);
        use rand::Rng as _;
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn avalanche_rough_check() {
        // Flipping one input bit should change roughly half the output bits.
        let base = splitmix64(0x1234_5678_9ABC_DEF0);
        let flipped = splitmix64(0x1234_5678_9ABC_DEF1);
        let differing = (base ^ flipped).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "poor avalanche: {differing} bits"
        );
    }
}
