//! Lilliefors test for normality.
//!
//! §3.1 of the paper validates the gaussian assumption behind the
//! state-space model by applying the Lilliefors test — a
//! Kolmogorov–Smirnov goodness-of-fit test whose critical values account
//! for the mean and variance being *estimated from the sample* — to
//! whitened Kalman-filter inputs, reporting 14 rejections over 1720
//! simulated nodes and 5 over 260 PlanetLab nodes.
//!
//! Critical values follow Lilliefors (1967) for small `n` with the
//! standard asymptotic formula `c(α)/√n` beyond the tabulated range
//! (Dallal & Wilkinson 1986 corrected constants).

use crate::normal::norm_cdf;
use serde::{Deserialize, Serialize};

/// Result of a Lilliefors normality test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LillieforsOutcome {
    /// The KS statistic `D = sup |F̂(x) − Φ((x−x̄)/s)|`.
    pub statistic: f64,
    /// Critical value at the requested significance level.
    pub critical_value: f64,
    /// Whether normality is rejected (`statistic > critical_value`).
    pub rejected: bool,
}

/// Significance levels with tabulated Lilliefors critical values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Significance {
    /// 1% significance level.
    OnePercent,
    /// 5% significance level (the level the paper uses).
    FivePercent,
    /// 10% significance level.
    TenPercent,
}

impl Significance {
    /// Asymptotic constant `c` such that the critical value ≈ `c/√n`.
    fn asymptotic_constant(self) -> f64 {
        match self {
            Significance::OnePercent => 1.031,
            Significance::FivePercent => 0.886,
            Significance::TenPercent => 0.805,
        }
    }

    /// Tabulated small-sample critical values for n = 4..=20 (Lilliefors
    /// 1967, as corrected by later Monte Carlo studies).
    fn small_sample_table(self) -> &'static [f64; 17] {
        match self {
            Significance::OnePercent => &[
                0.417, 0.405, 0.364, 0.348, 0.331, 0.311, 0.294, 0.284, 0.275, 0.268, 0.261, 0.257,
                0.250, 0.245, 0.239, 0.235, 0.231,
            ],
            Significance::FivePercent => &[
                0.381, 0.337, 0.319, 0.300, 0.285, 0.271, 0.258, 0.249, 0.242, 0.234, 0.227, 0.220,
                0.213, 0.206, 0.200, 0.195, 0.190,
            ],
            Significance::TenPercent => &[
                0.352, 0.315, 0.294, 0.276, 0.261, 0.249, 0.239, 0.230, 0.223, 0.214, 0.207, 0.201,
                0.195, 0.189, 0.184, 0.179, 0.174,
            ],
        }
    }

    /// Critical value for sample size `n ≥ 4`.
    pub fn critical_value(self, n: usize) -> f64 {
        assert!(n >= 4, "Lilliefors test requires n >= 4, got {n}");
        if n <= 20 {
            self.small_sample_table()[n - 4]
        } else {
            self.asymptotic_constant() / (n as f64).sqrt()
        }
    }
}

/// Compute the Lilliefors KS statistic of a sample against the normal
/// distribution with mean and variance estimated from the sample itself.
///
/// # Panics
/// Panics if fewer than 4 samples are given or the sample variance is zero.
pub fn lilliefors_statistic(samples: &[f64]) -> f64 {
    assert!(
        samples.len() >= 4,
        "Lilliefors statistic requires n >= 4, got {}",
        samples.len()
    );
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    assert!(
        var > 0.0,
        "Lilliefors statistic undefined for constant sample"
    );
    let sd = var.sqrt();

    let mut z: Vec<f64> = samples.iter().map(|x| (x - mean) / sd).collect();
    z.sort_by(f64::total_cmp);

    let mut d: f64 = 0.0;
    for (i, &zi) in z.iter().enumerate() {
        let cdf = norm_cdf(zi);
        let upper = (i + 1) as f64 / n - cdf; // F̂ steps up at the sample
        let lower = cdf - i as f64 / n; // distance just before the step
        d = d.max(upper).max(lower);
    }
    d
}

/// Run the Lilliefors normality test at the given significance level.
pub fn lilliefors_test(samples: &[f64], level: Significance) -> LillieforsOutcome {
    let statistic = lilliefors_statistic(samples);
    let critical_value = level.critical_value(samples.len());
    LillieforsOutcome {
        statistic,
        critical_value,
        rejected: statistic > critical_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;
    use crate::sample::{exponential, standard_normal, uniform};

    #[test]
    fn accepts_gaussian_samples() {
        let mut rng = stream_rng(100, 0);
        let mut rejections = 0;
        const TRIALS: usize = 200;
        for _ in 0..TRIALS {
            let xs: Vec<f64> = (0..150).map(|_| standard_normal(&mut rng)).collect();
            if lilliefors_test(&xs, Significance::FivePercent).rejected {
                rejections += 1;
            }
        }
        // Expected rejection rate is 5%; allow generous slack for a seeded run.
        assert!(
            rejections <= TRIALS / 8,
            "too many rejections on gaussian data: {rejections}/{TRIALS}"
        );
        assert!(
            rejections >= 1,
            "a 5% test should reject at least once in {TRIALS} trials"
        );
    }

    #[test]
    fn rejects_exponential_samples() {
        let mut rng = stream_rng(101, 0);
        let mut rejections = 0;
        for _ in 0..50 {
            let xs: Vec<f64> = (0..150).map(|_| exponential(&mut rng, 1.0)).collect();
            if lilliefors_test(&xs, Significance::FivePercent).rejected {
                rejections += 1;
            }
        }
        assert!(
            rejections >= 48,
            "should almost always reject exponential data: {rejections}/50"
        );
    }

    #[test]
    fn rejects_uniform_samples() {
        let mut rng = stream_rng(102, 0);
        let xs: Vec<f64> = (0..500).map(|_| uniform(&mut rng, 0.0, 1.0)).collect();
        assert!(lilliefors_test(&xs, Significance::FivePercent).rejected);
    }

    #[test]
    fn statistic_is_location_scale_invariant() {
        let mut rng = stream_rng(103, 0);
        let xs: Vec<f64> = (0..100).map(|_| standard_normal(&mut rng)).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 7.0 + 3.0 * x).collect();
        let dx = lilliefors_statistic(&xs);
        let dy = lilliefors_statistic(&ys);
        assert!((dx - dy).abs() < 1e-12);
    }

    #[test]
    fn critical_values_decrease_with_n() {
        for level in [
            Significance::OnePercent,
            Significance::FivePercent,
            Significance::TenPercent,
        ] {
            let mut prev = f64::INFINITY;
            for n in [4, 8, 12, 16, 20, 30, 100, 1000] {
                let c = level.critical_value(n);
                assert!(c < prev, "critical value must shrink with n");
                prev = c;
            }
        }
    }

    #[test]
    fn stricter_levels_have_larger_critical_values() {
        for n in [5, 10, 20, 50, 200] {
            let c1 = Significance::OnePercent.critical_value(n);
            let c5 = Significance::FivePercent.critical_value(n);
            let c10 = Significance::TenPercent.critical_value(n);
            assert!(c1 > c5 && c5 > c10, "n = {n}");
        }
    }

    #[test]
    fn asymptotic_value_matches_formula() {
        let c = Significance::FivePercent.critical_value(100);
        assert!((c - 0.886 / 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires n >= 4")]
    fn rejects_tiny_samples() {
        lilliefors_statistic(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "constant sample")]
    fn rejects_constant_samples() {
        lilliefors_statistic(&[2.0, 2.0, 2.0, 2.0, 2.0]);
    }
}
