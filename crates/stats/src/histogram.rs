//! Interval histograms with per-bin provenance.
//!
//! Table 1 of the paper buckets prediction errors into fixed-width
//! intervals and reports, per interval, *how many nodes* contributed, the
//! number of occurrences of the smallest error observed in the interval,
//! and the number of occurrences of the largest. This module reproduces
//! that slightly unusual bookkeeping.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Per-bin record of the Table 1 statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalBin {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge.
    pub hi: f64,
    /// Distinct contributing nodes.
    pub node_count: usize,
    /// Smallest value that landed in this bin.
    pub min_value: f64,
    /// Number of samples equal (to tolerance) to `min_value`.
    pub min_occurrences: usize,
    /// Largest value that landed in this bin.
    pub max_value: f64,
    /// Number of samples equal (to tolerance) to `max_value`.
    pub max_occurrences: usize,
    /// Total samples in this bin.
    pub total: usize,
}

/// Histogram over `[0, width·bins)` with uniform bins, tracking which node
/// contributed each sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntervalHistogram {
    width: f64,
    bins: Vec<BinAcc>,
    overflow: BinAcc,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BinAcc {
    nodes: BTreeSet<usize>,
    values: Vec<f64>,
}

impl BinAcc {
    fn new() -> Self {
        Self {
            nodes: BTreeSet::new(),
            values: Vec::new(),
        }
    }
}

/// Tolerance used to count "occurrences of the min/max error": the paper's
/// table counts repeated observations of the same extreme value, which in
/// floating point requires an equality tolerance.
const EXTREME_TOL: f64 = 1e-9;

impl IntervalHistogram {
    /// Create a histogram with `bins` uniform intervals of width `width`
    /// starting at zero. Values `≥ bins·width` land in an overflow bin.
    ///
    /// # Panics
    /// Panics if `width` is not positive or `bins` is zero.
    pub fn new(width: f64, bins: usize) -> Self {
        assert!(width > 0.0, "bin width must be positive, got {width}");
        assert!(bins > 0, "need at least one bin");
        Self {
            width,
            bins: (0..bins).map(|_| BinAcc::new()).collect(),
            overflow: BinAcc::new(),
        }
    }

    /// Record a sample from `node`.
    ///
    /// # Panics
    /// Panics on negative or non-finite values (prediction errors are
    /// absolute values by construction).
    pub fn record(&mut self, node: usize, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "histogram values must be finite and non-negative, got {value}"
        );
        let idx = (value / self.width) as usize;
        let bin = if idx < self.bins.len() {
            &mut self.bins[idx]
        } else {
            &mut self.overflow
        };
        bin.nodes.insert(node);
        bin.values.push(value);
    }

    /// Number of regular (non-overflow) bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Total recorded samples, including overflow.
    pub fn total(&self) -> usize {
        self.bins.iter().map(|b| b.values.len()).sum::<usize>() + self.overflow.values.len()
    }

    /// Produce the non-empty bins in Table 1 form, in ascending interval
    /// order. The overflow bin, if non-empty, is appended with
    /// `hi = +∞`.
    pub fn table(&self) -> Vec<IntervalBin> {
        let mut out = Vec::new();
        for (i, bin) in self.bins.iter().enumerate() {
            if let Some(row) = summarize(bin, i as f64 * self.width, (i + 1) as f64 * self.width) {
                out.push(row);
            }
        }
        if let Some(row) = summarize(
            &self.overflow,
            self.bins.len() as f64 * self.width,
            f64::INFINITY,
        ) {
            out.push(row);
        }
        out
    }
}

fn summarize(bin: &BinAcc, lo: f64, hi: f64) -> Option<IntervalBin> {
    if bin.values.is_empty() {
        return None;
    }
    let min_value = bin.values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_value = bin.values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min_occurrences = bin
        .values
        .iter()
        .filter(|&&v| (v - min_value).abs() <= EXTREME_TOL)
        .count();
    let max_occurrences = bin
        .values
        .iter()
        .filter(|&&v| (v - max_value).abs() <= EXTREME_TOL)
        .count();
    Some(IntervalBin {
        lo,
        hi,
        node_count: bin.nodes.len(),
        min_value,
        min_occurrences,
        max_value,
        max_occurrences,
        total: bin.values.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_values_to_bins() {
        let mut h = IntervalHistogram::new(0.05, 4);
        h.record(0, 0.01);
        h.record(1, 0.06);
        h.record(2, 0.12);
        h.record(3, 0.19);
        let t = h.table();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].lo, 0.0);
        assert!((t[1].lo - 0.05).abs() < 1e-12);
        assert_eq!(t.iter().map(|b| b.total).sum::<usize>(), 4);
    }

    #[test]
    fn counts_distinct_nodes_not_samples() {
        let mut h = IntervalHistogram::new(0.1, 2);
        for _ in 0..5 {
            h.record(7, 0.05);
        }
        h.record(8, 0.04);
        let t = h.table();
        assert_eq!(t[0].node_count, 2);
        assert_eq!(t[0].total, 6);
    }

    #[test]
    fn extreme_occurrences_counted() {
        let mut h = IntervalHistogram::new(1.0, 1);
        h.record(0, 0.2);
        h.record(0, 0.2);
        h.record(1, 0.2);
        h.record(1, 0.9);
        let t = h.table();
        assert_eq!(t[0].min_value, 0.2);
        assert_eq!(t[0].min_occurrences, 3);
        assert_eq!(t[0].max_value, 0.9);
        assert_eq!(t[0].max_occurrences, 1);
    }

    #[test]
    fn overflow_bin_captures_tail() {
        let mut h = IntervalHistogram::new(0.1, 2);
        h.record(0, 5.0);
        let t = h.table();
        assert_eq!(t.len(), 1);
        assert!(t[0].hi.is_infinite());
        assert!((t[0].lo - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_bins_omitted() {
        let mut h = IntervalHistogram::new(0.1, 10);
        h.record(0, 0.95);
        let t = h.table();
        assert_eq!(t.len(), 1);
        assert!((t[0].lo - 0.9).abs() < 1e-12);
    }

    #[test]
    fn boundary_value_goes_to_upper_bin() {
        let mut h = IntervalHistogram::new(0.1, 2);
        h.record(0, 0.1);
        let t = h.table();
        assert!((t[0].lo - 0.1).abs() < 1e-12, "0.1 belongs to [0.1, 0.2)");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        IntervalHistogram::new(0.1, 2).record(0, -0.5);
    }

    #[test]
    fn total_tracks_all_records() {
        let mut h = IntervalHistogram::new(0.25, 3);
        for i in 0..100 {
            h.record(i % 10, (i as f64) * 0.017);
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.table().iter().map(|b| b.total).sum::<usize>(), 100);
    }
}
