//! Confusion-matrix accounting and ROC curves.
//!
//! §5.1 of the paper defines the detection metrics: a *positive* is a
//! malicious embedding step (should be rejected), a *negative* a normal
//! one (should be completed). This module accumulates the four confusion
//! counts and derives FNR, FPR, TPR and TPTF exactly as defined there, and
//! assembles ROC curves (Figs 9 and 14) from per-significance-level runs.

use serde::{Deserialize, Serialize};

/// Counts of test outcomes over a population of embedding steps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Malicious steps correctly rejected.
    pub true_positives: u64,
    /// Normal steps wrongly rejected.
    pub false_positives: u64,
    /// Normal steps correctly completed.
    pub true_negatives: u64,
    /// Malicious steps wrongly completed.
    pub false_negatives: u64,
}

impl Confusion {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one classified embedding step.
    ///
    /// `malicious` is ground truth; `rejected` is the test's verdict.
    pub fn record(&mut self, malicious: bool, rejected: bool) {
        match (malicious, rejected) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &Confusion) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }

    /// Total number of malicious steps `P_P`.
    pub fn positives(&self) -> u64 {
        self.true_positives + self.false_negatives
    }

    /// Total number of normal steps `P_N`.
    pub fn negatives(&self) -> u64 {
        self.true_negatives + self.false_positives
    }

    /// Total steps observed.
    pub fn total(&self) -> u64 {
        self.positives() + self.negatives()
    }

    /// True positive rate `TPR = T_TP / P_P`; 0 when no positives exist.
    pub fn tpr(&self) -> f64 {
        ratio(self.true_positives, self.positives())
    }

    /// False positive rate `FPR = T_FP / P_N`; 0 when no negatives exist.
    pub fn fpr(&self) -> f64 {
        ratio(self.false_positives, self.negatives())
    }

    /// False negative rate `FNR = T_FN / P_P`; 0 when no positives exist.
    pub fn fnr(&self) -> f64 {
        ratio(self.false_negatives, self.positives())
    }

    /// True negative rate `TNR = T_TN / P_N`.
    pub fn tnr(&self) -> f64 {
        ratio(self.true_negatives, self.negatives())
    }

    /// True positive test fraction `TPTF = T_TP / (T_TP + T_FP)` — the
    /// proportion of raised alarms that were justified; 0 when no alarms.
    pub fn tptf(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_positives,
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Significance level α that produced this point.
    pub alpha: f64,
    /// False positive rate at α.
    pub fpr: f64,
    /// True positive rate at α.
    pub tpr: f64,
}

/// A ROC curve assembled from per-α confusion tallies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    /// Points ordered by increasing α (and thus, for a sane detector,
    /// nondecreasing FPR).
    pub points: Vec<RocPoint>,
}

impl RocCurve {
    /// Build a curve from `(alpha, confusion)` pairs; sorts by α.
    pub fn from_levels(mut levels: Vec<(f64, Confusion)>) -> Self {
        levels.sort_by(|a, b| a.0.total_cmp(&b.0));
        let points = levels
            .into_iter()
            .map(|(alpha, c)| RocPoint {
                alpha,
                fpr: c.fpr(),
                tpr: c.tpr(),
            })
            .collect();
        Self { points }
    }

    /// Area under the curve via trapezoids, anchored at (0,0) and (1,1).
    ///
    /// A random detector scores 0.5; the paper's detector under light
    /// attack should score well above 0.9.
    pub fn auc(&self) -> f64 {
        let mut pts: Vec<(f64, f64)> = std::iter::once((0.0, 0.0))
            .chain(self.points.iter().map(|p| (p.fpr, p.tpr)))
            .chain(std::iter::once((1.0, 1.0)))
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        pts.windows(2)
            .map(|w| (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn record_routes_to_the_right_cell() {
        let mut c = Confusion::new();
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!(c.true_positives, 1);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.true_negatives, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn rates_match_paper_definitions() {
        let c = Confusion {
            true_positives: 30,
            false_negatives: 10,
            false_positives: 5,
            true_negatives: 55,
        };
        assert!((c.tpr() - 0.75).abs() < 1e-12);
        assert!((c.fnr() - 0.25).abs() < 1e-12);
        assert!((c.fpr() - 5.0 / 60.0).abs() < 1e-12);
        assert!((c.tptf() - 30.0 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero_not_nan() {
        let c = Confusion::new();
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.fnr(), 0.0);
        assert_eq!(c.tptf(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Confusion {
            true_positives: 1,
            false_positives: 2,
            true_negatives: 3,
            false_negatives: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.true_positives, 2);
        assert_eq!(a.false_negatives, 8);
    }

    #[test]
    fn perfect_detector_auc_is_one() {
        let c = Confusion {
            true_positives: 50,
            false_negatives: 0,
            false_positives: 0,
            true_negatives: 50,
        };
        let roc = RocCurve::from_levels(vec![(0.05, c)]);
        assert!((roc.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_detector_auc_is_half() {
        // FPR == TPR at every level → random classifier.
        let mk = |tp: u64, fp: u64| Confusion {
            true_positives: tp,
            false_negatives: 100 - tp,
            false_positives: fp,
            true_negatives: 100 - fp,
        };
        let roc = RocCurve::from_levels(vec![
            (0.01, mk(10, 10)),
            (0.05, mk(50, 50)),
            (0.10, mk(90, 90)),
        ]);
        assert!((roc.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_levels_sorts_by_alpha() {
        let c = Confusion::new();
        let roc = RocCurve::from_levels(vec![(0.1, c), (0.01, c), (0.05, c)]);
        let alphas: Vec<f64> = roc.points.iter().map(|p| p.alpha).collect();
        assert_eq!(alphas, vec![0.01, 0.05, 0.1]);
    }

    proptest! {
        #[test]
        fn tpr_fnr_always_complementary(tp in 0u64..1000, fn_ in 0u64..1000) {
            prop_assume!(tp + fn_ > 0);
            let c = Confusion { true_positives: tp, false_negatives: fn_, ..Default::default() };
            prop_assert!((c.tpr() + c.fnr() - 1.0).abs() < 1e-12);
        }

        #[test]
        fn rates_bounded(
            tp in 0u64..1000, fp in 0u64..1000,
            tn in 0u64..1000, fn_ in 0u64..1000,
        ) {
            let c = Confusion {
                true_positives: tp, false_positives: fp,
                true_negatives: tn, false_negatives: fn_,
            };
            for r in [c.tpr(), c.fpr(), c.fnr(), c.tnr(), c.tptf()] {
                prop_assert!((0.0..=1.0).contains(&r));
            }
        }

        #[test]
        fn auc_bounded(levels in proptest::collection::vec(
            (1u64..100, 1u64..100), 1..6)
        ) {
            let tallies: Vec<(f64, Confusion)> = levels.iter().enumerate().map(|(i, &(tp, fp))| {
                (0.01 * (i + 1) as f64, Confusion {
                    true_positives: tp, false_negatives: 100 - tp.min(100),
                    false_positives: fp, true_negatives: 100 - fp.min(100),
                })
            }).collect();
            let auc = RocCurve::from_levels(tallies).auc();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&auc));
        }
    }
}
