//! The workspace-wide RNG stream-tag registry.
//!
//! Every independent random stream in the workspace is derived from the
//! master seed and a 4-byte ASCII tag (`0x4641_4C54` spells `"FALT"`).
//! Two different subsystems accidentally minting the *same* tag silently
//! correlate draws that the determinism argument assumes independent —
//! exactly what happened when both `VivaldiIsolationAttack` and
//! `NpsCollusionAttack` minted `"VICT"` on their own. This module is the
//! fix: **the one place a 4-byte stream tag may be declared**. Use sites
//! refer to `streams::FALT` etc.; `ices-audit` rule STREAM01 fails the
//! build on any bare tag literal outside this file, on duplicate values
//! here, and on registered tags no code uses.
//!
//! The declarations below are deliberately plain `pub const NAME: u64`
//! items (no macro indirection): the audit's cross-crate analyzer reads
//! this file lexically and extracts every declaration from exactly that
//! token pattern, so the registry the compiler sees and the registry the
//! analyzer sees are the same text.
//!
//! The registry is self-checking: a unit test decodes each constant's
//! four bytes and asserts they spell the constant's own name, so a tag
//! can neither collide nor drift from its mnemonic. (The one wider tag
//! in the workspace, `kmeans`'s 6-byte `0x6B6D_6561_6E73`, predates the
//! 4-byte convention and stays local to `kmeans.rs`; STREAM01 scopes to
//! 4-byte tags.)

/// Per-probe link-fault fate draws (`netsim::faults`).
pub const FALT: u64 = 0x4641_4C54;
/// Per-epoch churn fate draws (`netsim::faults`).
pub const CHRN: u64 = 0x4348_524E;
/// Synthetic-topology median-RTT estimation samples (`netsim::rtt`).
pub const MEDI: u64 = 0x4D45_4449;
/// Per-link probe noise streams (`netsim::network::measure_rtt`).
pub const PROB: u64 = 0x5052_4F42;
/// PlanetLab topology path synthesis (`netsim::planetlab`).
pub const PATH: u64 = 0x5041_5448;
/// King-topology node placement (`netsim::kinggen`).
pub const PLAC: u64 = 0x504C_4143;
/// Eclipse neighbor-slot steering draws (`netsim::eclipse`).
pub const ECLN: u64 = 0x4543_4C4E;
/// Eclipse replacement steering draws (`netsim::eclipse`).
pub const ECLR: u64 = 0x4543_4C52;
/// Eclipse per-victim frame-translation directions (`attack::eclipse`).
pub const ECLP: u64 = 0x4543_4C50;
/// Sybil swarm shared anchor draw (`attack::sybil_swarm`).
pub const SYBA: u64 = 0x5359_4241;
/// Per-sybil jitter around the swarm anchor (`attack::sybil_swarm`).
pub const SYBJ: u64 = 0x5359_424A;
/// Cross-verification witness quorum draws (`attack::defense`).
pub const WTNS: u64 = 0x5754_4E53;
/// Frog-boiling per-victim drift directions (`attack::slow_drift`).
pub const DRFT: u64 = 0x4452_4654;
/// Vivaldi-isolation victim selection (`attack::vivaldi_isolation`).
/// Historically shared with the NPS conspiracy's victim draw — the
/// silent correlation STREAM01 exists to prevent; the NPS side now
/// draws from [`NPSV`].
pub const VICT: u64 = 0x5649_4354;
/// NPS-collusion per-layer victim selection (`attack::nps_collusion`).
/// Renamed from `"VICT"` to break the cross-attack stream collision.
pub const NPSV: u64 = 0x4E50_5356;
/// NPS-collusion per-victim push directions (`attack::nps_collusion`).
pub const PSHD: u64 = 0x5053_4844;
/// Vivaldi-isolation fake cluster coordinates (`attack::vivaldi_isolation`).
pub const LIES: u64 = 0x4C49_4553;
/// Coordinate-certificate MAC key schedule (`core::certify`).
pub const CERT: u64 = 0x4345_5254;
/// Per-node Vivaldi embedding jitter (`vivaldi::node`).
pub const VIVA: u64 = 0x5649_5641;
/// Vivaldi driver scenario assembly draws (`sim::vivaldi_driver`).
pub const VIVD: u64 = 0x5649_5644;
/// Vivaldi embedding-step probe nonces (`sim::vivaldi_driver`).
pub const STEP: u64 = 0x5354_4550;
/// Vivaldi §4.2 join-probe nonces (`sim::vivaldi_driver`).
pub const JOIN: u64 = 0x4A4F_494E;
/// Vivaldi probe-retry nonces; attempt 0 reuses the primary nonce
/// (`sim::vivaldi_driver`).
pub const RTRY: u64 = 0x5254_5259;
/// Per-node neighbor-candidate sampling above the scan cap
/// (`sim::vivaldi_driver`).
pub const NCND: u64 = 0x4E43_4E44;
/// Cross-verification witness probe nonces (`sim::vivaldi_driver`).
pub const XPRB: u64 = 0x5850_5242;
/// NPS hierarchy assembly draws (`nps::hierarchy`).
pub const NPSH: u64 = 0x4E50_5348;
/// Per-node NPS positioning jitter (`nps::node`).
pub const NPSN: u64 = 0x4E50_534E;
/// NPS driver scenario assembly draws (`sim::nps_driver`).
pub const NPSD: u64 = 0x4E50_5344;
/// NPS positioning-round probe nonces (`sim::nps_driver`).
pub const NPSP: u64 = 0x4E50_5350;
/// NPS §4.2 join-probe nonces (`sim::nps_driver`).
pub const NPSJ: u64 = 0x4E50_534A;
/// NPS probe-retry nonces; attempt 0 reuses the primary nonce
/// (`sim::nps_driver`).
pub const NPSR: u64 = 0x4E50_5352;
/// Load-generator simulated-client claim draws (`svc::client`).
pub const LGEN: u64 = 0x4C47_454E;

/// Every registered tag, in declaration order, for inventory tests and
/// the audit's cross-crate table.
pub const ALL: &[(&str, u64)] = &[
    ("FALT", FALT),
    ("CHRN", CHRN),
    ("MEDI", MEDI),
    ("PROB", PROB),
    ("PATH", PATH),
    ("PLAC", PLAC),
    ("ECLN", ECLN),
    ("ECLR", ECLR),
    ("ECLP", ECLP),
    ("SYBA", SYBA),
    ("SYBJ", SYBJ),
    ("WTNS", WTNS),
    ("DRFT", DRFT),
    ("VICT", VICT),
    ("NPSV", NPSV),
    ("PSHD", PSHD),
    ("LIES", LIES),
    ("CERT", CERT),
    ("VIVA", VIVA),
    ("VIVD", VIVD),
    ("STEP", STEP),
    ("JOIN", JOIN),
    ("RTRY", RTRY),
    ("NCND", NCND),
    ("XPRB", XPRB),
    ("NPSH", NPSH),
    ("NPSN", NPSN),
    ("NPSD", NPSD),
    ("NPSP", NPSP),
    ("NPSJ", NPSJ),
    ("NPSR", NPSR),
    ("LGEN", LGEN),
];

#[cfg(test)]
mod tests {
    use super::ALL;
    use std::collections::BTreeSet;

    /// Every tag's four bytes must spell its own constant name — the
    /// registry cannot drift from its mnemonics.
    #[test]
    fn tags_spell_their_names() {
        for &(name, value) in ALL {
            assert!(value <= u64::from(u32::MAX), "{name} wider than 4 bytes");
            let bytes = (value as u32).to_be_bytes();
            let spelled: String = bytes.iter().map(|&b| b as char).collect();
            assert_eq!(spelled, name, "tag 0x{value:08X} does not spell {name}");
        }
    }

    /// No two registered streams may share a tag value (the `"VICT"`
    /// collision class) or a name.
    #[test]
    fn tags_are_unique() {
        let values: BTreeSet<u64> = ALL.iter().map(|&(_, v)| v).collect();
        assert_eq!(values.len(), ALL.len(), "duplicate tag value in registry");
        let names: BTreeSet<&str> = ALL.iter().map(|&(n, _)| n).collect();
        assert_eq!(names.len(), ALL.len(), "duplicate tag name in registry");
    }

    /// The two attacks' victim-selection streams are distinct — the
    /// regression the registry exists to prevent.
    #[test]
    fn vivaldi_and_nps_victim_streams_are_distinct() {
        assert_ne!(super::VICT, super::NPSV);
    }
}
