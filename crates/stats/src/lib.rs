//! Statistics substrate for the `ices` workspace.
//!
//! This crate implements, from scratch, every piece of statistical machinery
//! the paper *Securing Internet Coordinate Embedding Systems* (SIGCOMM 2007)
//! relies on:
//!
//! * [`normal`] — standard-normal kernels: pdf, CDF `Φ`, survival `Q`, and
//!   high-precision quantile `Φ⁻¹` (Wichura's AS 241). The detection
//!   threshold of the paper, `t_n = √v_η · Q⁻¹(α/2)`, is built on these.
//! * [`sample`] — seeded samplers (normal, lognormal, exponential, Pareto)
//!   used by the network fluctuation models. Implemented here so the
//!   workspace does not need `rand_distr`.
//! * [`rng`] — deterministic seed derivation so that every simulated node
//!   gets an independent but reproducible random stream.
//! * [`streams`] — the workspace-wide registry of 4-byte RNG stream
//!   tags; the single place such a tag may be declared (audit STREAM01).
//! * [`online`] — Welford online moments and extrema.
//! * [`ewma`] — exponentially weighted moving averages (Vivaldi's local
//!   error estimator).
//! * [`ecdf`] — empirical CDFs and percentiles (every CDF figure of the
//!   paper's evaluation).
//! * [`lilliefors`] — the Lilliefors normality test used in §3.1 of the
//!   paper to validate the gaussian assumption of the state-space model.
//! * [`qq`] — quantile–quantile data against the standard normal (Fig 1).
//! * [`kmeans`] — k-means clustering with k-means++ seeding, used for the
//!   cluster-head Surveyor deployment of §3.3.
//! * [`roc`] — confusion counts and ROC assembly (Figs 9–12, 14).
//! * [`histogram`] — interval histograms (Table 1).
//!
//! All routines are deterministic given a seed and are extensively unit- and
//! property-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ecdf;
pub mod ewma;
pub mod histogram;
pub mod kmeans;
pub mod lilliefors;
pub mod normal;
pub mod online;
pub mod qq;
pub mod rng;
pub mod roc;
pub mod sample;
pub mod streams;

pub use ecdf::Ecdf;
pub use ewma::Ewma;
pub use histogram::IntervalHistogram;
pub use lilliefors::{lilliefors_statistic, lilliefors_test, LillieforsOutcome};
pub use normal::{norm_cdf, norm_pdf, norm_ppf, q_function, q_inverse};
pub use online::OnlineStats;
pub use roc::{Confusion, RocCurve, RocPoint};
