//! Online (single-pass) moment accumulation.
//!
//! Welford's algorithm: numerically stable running mean and variance with
//! O(1) state, plus extrema. Used throughout the simulator to accumulate
//! per-node relative-error statistics without storing every sample.

use serde::{Deserialize, Serialize};

/// Running count, mean, variance (via Welford), min and max.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`); 0 when fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (divides by `n − 1`); 0 when fewer than 2.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0, 32.5, -3.25];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let (mean, var) = naive_mean_var(&xs);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -3.25);
        assert_eq!(s.max(), 32.5);
        assert_eq!(s.count(), 7);
    }

    #[test]
    fn empty_and_single() {
        let mut s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let mut s = OnlineStats::new();
        for x in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            s.push(x);
        }
        assert!((s.mean() - (1e9 + 10.0)).abs() < 1e-3);
        assert!((s.sample_variance() - 30.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(
            a in proptest::collection::vec(-1e6f64..1e6, 0..50),
            b in proptest::collection::vec(-1e6f64..1e6, 0..50),
        ) {
            let mut merged = OnlineStats::new();
            for &x in &a { merged.push(x); }
            let mut other = OnlineStats::new();
            for &x in &b { other.push(x); }
            merged.merge(&other);

            let mut seq = OnlineStats::new();
            for &x in a.iter().chain(&b) { seq.push(x); }

            prop_assert_eq!(merged.count(), seq.count());
            if seq.count() > 0 {
                prop_assert!((merged.mean() - seq.mean()).abs() < 1e-6);
                let scale = seq.variance().max(1.0);
                prop_assert!((merged.variance() - seq.variance()).abs() / scale < 1e-9);
                prop_assert_eq!(merged.min(), seq.min());
                prop_assert_eq!(merged.max(), seq.max());
            }
        }

        #[test]
        fn variance_never_negative(xs in proptest::collection::vec(-1e9f64..1e9, 0..200)) {
            let mut s = OnlineStats::new();
            for &x in &xs { s.push(x); }
            prop_assert!(s.variance() >= 0.0);
            prop_assert!(s.sample_variance() >= 0.0);
        }

        #[test]
        fn mean_within_extrema(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let mut s = OnlineStats::new();
            for &x in &xs { s.push(x); }
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }
    }
}
