//! Standard-normal distribution kernels.
//!
//! The detection test of the paper needs the survival function
//! `Q(x) = 1 − Φ(x)` and its inverse (Eq. 5: `t_n = √v_η,n · Q⁻¹(α/2)`).
//! `Φ` is computed through a high-precision complementary error function
//! and `Φ⁻¹` uses Wichura's algorithm AS 241, accurate to ~1e-15 over the
//! full open unit interval.

#![allow(clippy::excessive_precision)] // published coefficient tables kept verbatim

use std::f64::consts::{PI, SQRT_2};

/// Probability density of the standard normal distribution at `x`.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Cumulative distribution function `Φ(x)` of the standard normal.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Survival function `Q(x) = 1 − Φ(x)` of the standard normal.
///
/// Computed directly from `erfc` so the deep upper tail does not suffer the
/// catastrophic cancellation that `1.0 − norm_cdf(x)` would.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / SQRT_2)
}

/// Inverse of the survival function: the `x` such that `Q(x) = p`.
///
/// This is the quantity the paper's Eq. 5 denotes `Q⁻¹(α/2)`.
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
pub fn q_inverse(p: f64) -> f64 {
    norm_ppf(1.0 - p)
}

/// Percent-point function (quantile) `Φ⁻¹(p)` of the standard normal.
///
/// Implementation of Wichura's algorithm AS 241 (PPND16), with absolute
/// error below ~1e-15 for `p ∈ (0, 1)`.
///
/// # Panics
/// Panics if `p` is outside the open interval `(0, 1)` or is NaN.
pub fn norm_ppf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "norm_ppf requires p in (0, 1), got {p}");
    let q = p - 0.5;
    if q.abs() <= 0.425 {
        // Central region: rational approximation in r = 0.425² − q².
        let r = 0.180_625 - q * q;
        return q * poly(&A_CENTRAL, r) / poly(&B_CENTRAL, r);
    }
    // Tail regions: approximate in r = sqrt(-ln(min(p, 1-p))).
    let r = if q < 0.0 { p } else { 1.0 - p };
    let r = (-r.ln()).sqrt();
    let x = if r <= 5.0 {
        let r = r - 1.6;
        poly(&A_MIDTAIL, r) / poly(&B_MIDTAIL, r)
    } else {
        let r = r - 5.0;
        poly(&A_FARTAIL, r) / poly(&B_FARTAIL, r)
    };
    if q < 0.0 {
        -x
    } else {
        x
    }
}

/// Complementary error function, `erfc(x) = 1 − erf(x)`.
///
/// Uses the rational Chebyshev approximation of W. J. Cody (1969) split
/// over three ranges; relative error below ~1e-14, sufficient for every
/// consumer in this workspace (the detection thresholds involve α ≥ 1e-4).
pub fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    let v = if ax < 0.468_75 {
        1.0 - erf_small(ax)
    } else if ax < 4.0 {
        erfc_mid(ax)
    } else {
        erfc_large(ax)
    };
    if x < 0.0 {
        2.0 - v
    } else {
        v
    }
}

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    if x.abs() < 0.468_75 {
        if x < 0.0 {
            -erf_small(-x)
        } else {
            erf_small(x)
        }
    } else {
        1.0 - erfc(x)
    }
}

fn erf_small(x: f64) -> f64 {
    // Cody range |x| < 0.5: erf(x) = x * P(x²)/Q(x²).
    const P: [f64; 5] = [
        3.209_377_589_138_469_4e3,
        3.774_852_376_853_020_2e2,
        1.138_641_541_510_501_6e2,
        3.161_123_743_870_565_6,
        1.857_777_061_846_031_5e-1,
    ];
    const Q: [f64; 4] = [
        2.844_236_833_439_170_5e3,
        1.282_616_526_077_372_3e3,
        2.440_246_379_344_441_6e2,
        2.360_129_095_234_412_8e1,
    ];
    let z = x * x;
    let num = ((((P[4] * z + P[3]) * z + P[2]) * z + P[1]) * z) + P[0];
    let den = ((((z + Q[3]) * z + Q[2]) * z + Q[1]) * z) + Q[0];
    x * num / den
}

fn erfc_mid(x: f64) -> f64 {
    // Cody range 0.46875 ≤ x ≤ 4: erfc(x) = exp(-x²) * P(x)/Q(x).
    const P: [f64; 9] = [
        1.230_339_354_797_997_2e3,
        2.051_078_377_826_071_6e3,
        1.712_047_612_634_070_7e3,
        8.819_522_212_417_690_9e2,
        2.986_351_381_974_001_1e2,
        6.611_919_063_714_162_9e1,
        8.883_149_794_388_375_7,
        5.641_884_969_886_700_9e-1,
        2.153_115_354_744_038_3e-8,
    ];
    const Q: [f64; 8] = [
        1.230_339_354_803_749_5e3,
        3.439_367_674_143_721_6e3,
        4.362_619_090_143_247e3,
        3.290_799_235_733_459_7e3,
        1.621_389_574_566_690_3e3,
        5.371_811_018_620_098_6e2,
        1.176_939_508_913_124_6e2,
        1.574_492_611_070_983_3e1,
    ];
    let num = horner_up(&P, x);
    let den = horner_up_monic(&Q, x);
    (-x * x).exp() * num / den
}

fn erfc_large(x: f64) -> f64 {
    // Cody range x > 4: erfc(x) = exp(-x²)/x * (1/√π + R(1/x²)/x²).
    const P: [f64; 6] = [
        -6.587_491_615_298_378_4e-4,
        -1.608_378_514_874_227_7e-2,
        -1.257_817_261_112_292_1e-1,
        -3.603_448_999_498_044_4e-1,
        -3.053_266_349_612_323_4e-1,
        -1.631_538_713_730_209_8e-2,
    ];
    const Q: [f64; 5] = [
        2.335_204_976_268_691_8e-3,
        6.051_834_131_244_131_8e-2,
        5.279_051_029_514_284_9e-1,
        1.872_952_849_923_460_4,
        2.568_520_192_289_822,
    ];
    if x > 26.0 {
        return 0.0; // below smallest positive normal f64 already
    }
    let z = 1.0 / (x * x);
    let num = horner_up(&P, z);
    let den = horner_up_monic(&Q, z);
    let r = z * num / den;
    (-x * x).exp() / x * (1.0 / std::f64::consts::PI.sqrt() + r)
}

/// Evaluate `c[0] + c[1] x + … + c[n] xⁿ` (coefficients in ascending order).
fn horner_up(c: &[f64], x: f64) -> f64 {
    let mut acc = 0.0;
    for &ci in c.iter().rev() {
        acc = acc * x + ci;
    }
    acc
}

/// Evaluate a monic polynomial `c[0] + c[1] x + … + xⁿ⁺¹` where the leading
/// coefficient 1 is implicit.
fn horner_up_monic(c: &[f64], x: f64) -> f64 {
    let mut acc = 1.0;
    for &ci in c.iter().rev() {
        acc = acc * x + ci;
    }
    acc
}

/// Evaluate a polynomial with coefficients in *descending* degree order.
fn poly(coeffs: &[f64], x: f64) -> f64 {
    let mut acc = 0.0;
    for &c in coeffs {
        acc = acc * x + c;
    }
    acc
}

// AS 241 coefficient tables (descending degree order).
const A_CENTRAL: [f64; 8] = [
    2.509_080_928_730_122_6e3,
    3.343_057_558_358_812_9e4,
    6.726_577_092_700_870_4e4,
    4.592_195_393_154_987e4,
    1.373_169_376_550_946e4,
    1.971_590_950_306_551_3e3,
    1.331_416_678_917_843_8e2,
    3.387_132_872_796_366_5,
];
const B_CENTRAL: [f64; 8] = [
    5.226_495_278_852_854_6e3,
    2.872_908_573_572_194_3e4,
    3.930_789_580_009_271e4,
    2.121_379_430_158_659_7e4,
    5.394_196_021_424_751e3,
    6.871_870_074_920_579e2,
    4.231_333_070_160_091e1,
    1.0,
];
const A_MIDTAIL: [f64; 8] = [
    7.745_450_142_783_414e-4,
    2.272_384_498_926_918_4e-2,
    2.417_807_251_774_506e-1,
    1.270_458_252_452_368_4,
    3.647_848_324_763_204_5,
    5.769_497_221_460_691,
    4.630_337_846_156_546,
    1.423_437_110_749_683_5,
];
const B_MIDTAIL: [f64; 8] = [
    1.050_750_071_644_416_9e-9,
    5.475_938_084_995_345e-4,
    1.519_866_656_361_645_7e-2,
    1.481_039_764_274_800_8e-1,
    6.897_673_349_851e-1,
    1.676_384_830_183_803_8,
    2.053_191_626_637_759,
    1.0,
];
const A_FARTAIL: [f64; 8] = [
    2.010_334_399_292_288_1e-7,
    2.711_555_568_743_487_6e-5,
    1.242_660_947_388_078_4e-3,
    2.653_218_952_657_612_4e-2,
    2.965_605_718_285_048_7e-1,
    1.784_826_539_917_291_3,
    5.463_784_911_164_114,
    6.657_904_643_501_103,
];
const B_FARTAIL: [f64; 8] = [
    2.044_263_103_389_939_7e-15,
    1.421_511_758_316_446e-7,
    1.846_318_317_510_054_8e-5,
    7.868_691_311_456_133e-4,
    1.487_536_129_085_061_5e-2,
    1.369_298_809_227_358e-1,
    5.998_322_065_558_88e-1,
    1.0,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_at_zero_is_inverse_sqrt_2pi() {
        assert!((norm_pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-15);
    }

    #[test]
    fn pdf_is_symmetric() {
        for x in [0.1, 0.5, 1.0, 2.5, 4.0] {
            assert_eq!(norm_pdf(x), norm_pdf(-x));
        }
    }

    #[test]
    fn cdf_reference_values() {
        // Reference values from standard normal tables / mpmath.
        let cases = [
            (0.0, 0.5),
            (1.0, 0.841_344_746_068_542_9),
            (-1.0, 0.158_655_253_931_457_05),
            (1.959_963_984_540_054, 0.975),
            (2.575_829_303_548_901, 0.995),
            (3.0, 0.998_650_101_968_369_9),
            (-3.0, 0.001_349_898_031_630_095),
        ];
        for (x, want) in cases {
            let got = norm_cdf(x);
            assert!((got - want).abs() < 1e-9, "Φ({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn q_is_complement_of_cdf() {
        for x in [-3.0, -1.0, -0.2, 0.0, 0.7, 2.0, 3.5] {
            assert!((q_function(x) + norm_cdf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn q_deep_tail_no_cancellation() {
        // Q(6) ≈ 9.865876e-10; naive 1 - Φ would lose most digits.
        let q6 = q_function(6.0);
        assert!((q6 - 9.865_876_450_376_946e-10).abs() / q6 < 1e-6);
    }

    #[test]
    fn ppf_reference_values() {
        let cases = [
            (0.5, 0.0),
            (0.975, 1.959_963_984_540_054),
            (0.995, 2.575_829_303_548_901),
            (0.84, 0.994_457_883_209_753_1),
            (0.001, -3.090_232_306_167_813_5),
            (1e-8, -5.612_001_243_305_505),
        ];
        for (p, want) in cases {
            let got = norm_ppf(p);
            assert!((got - want).abs() < 1e-8, "Φ⁻¹({p}) = {got}, want {want}");
        }
    }

    #[test]
    fn ppf_inverts_cdf() {
        for p in [1e-6, 1e-3, 0.01, 0.1, 0.3, 0.5, 0.77, 0.99, 1.0 - 1e-6] {
            let x = norm_ppf(p);
            assert!(
                (norm_cdf(x) - p).abs() < 1e-10,
                "Φ(Φ⁻¹({p})) = {}",
                norm_cdf(x)
            );
        }
    }

    #[test]
    fn q_inverse_matches_paper_thresholds() {
        // α = 5% → Q⁻¹(0.025) is the familiar 1.96.
        assert!((q_inverse(0.025) - 1.959_963_984_540_054).abs() < 1e-9);
        // α = 1% → 2.5758…
        assert!((q_inverse(0.005) - 2.575_829_303_548_901).abs() < 1e-9);
    }

    #[test]
    fn q_inverse_monotone_decreasing_in_p() {
        let mut prev = f64::INFINITY;
        for p in [0.001, 0.005, 0.015, 0.025, 0.05] {
            let t = q_inverse(p);
            assert!(t < prev, "Q⁻¹ must decrease as p grows");
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "norm_ppf requires p in (0, 1)")]
    fn ppf_rejects_zero() {
        norm_ppf(0.0);
    }

    #[test]
    #[should_panic(expected = "norm_ppf requires p in (0, 1)")]
    fn ppf_rejects_one() {
        norm_ppf(1.0);
    }

    #[test]
    fn erf_and_erfc_are_complements() {
        for x in [-5.0, -2.0, -0.3, 0.0, 0.4, 1.7, 3.0, 6.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn erf_reference_values() {
        let cases = [
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (2.0, 0.995_322_265_018_952_7),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-10, "erf({x})");
        }
    }

    #[test]
    fn erfc_large_argument_underflows_to_zero() {
        assert_eq!(erfc(30.0), 0.0);
        assert_eq!(norm_cdf(-60.0), 0.0);
        assert_eq!(norm_cdf(60.0), 1.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        let mut x = -8.0;
        while x <= 8.0 {
            let c = norm_cdf(x);
            assert!(c >= prev, "Φ must be nondecreasing at {x}");
            prev = c;
            x += 0.05;
        }
    }
}
