//! Empirical cumulative distribution functions and percentiles.
//!
//! Every CDF plot in the paper's evaluation (Figs 3, 4, 5, 13, 15) and the
//! per-node 95th-percentile representativeness metric of §3.3 are built on
//! this module.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a set of observations.
///
/// Construction sorts the samples once; evaluation is a binary search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from samples. Non-finite values are rejected.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN/±∞.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "ECDF requires at least one sample");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "ECDF samples must be finite"
        );
        samples.sort_by(f64::total_cmp);
        Self { sorted: samples }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no samples (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of samples `≤ x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x when we test
        // with `v <= x` since the array is sorted ascending.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Quantile `q ∈ [0, 1]` using the nearest-rank method (quantile 0 is
    /// the minimum, quantile 1 the maximum).
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if q == 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let rank = (q * n as f64).ceil() as usize;
        self.sorted[rank.clamp(1, n) - 1]
    }

    /// The `p`-th percentile, `p ∈ [0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The sorted sample values.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluate the ECDF at `k` evenly spaced x-positions spanning the
    /// sample range, returning `(x, F(x))` pairs — the series the paper's
    /// CDF figures plot.
    ///
    /// # Panics
    /// Panics if `k < 2`.
    pub fn curve(&self, k: usize) -> Vec<(f64, f64)> {
        assert!(k >= 2, "curve needs at least 2 points");
        let lo = self.sorted[0];
        let hi = *self.sorted.last().unwrap_or(&lo);
        (0..k)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (k - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Maximum absolute difference against another ECDF evaluated on the
    /// union of both supports (two-sample Kolmogorov–Smirnov statistic).
    ///
    /// Used to quantify Surveyor representativeness: how far the Surveyor
    /// population's error distribution sits from the full population's.
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

/// Nearest-rank percentile of a slice without building an [`Ecdf`].
///
/// # Panics
/// Panics if `xs` is empty, contains non-finite values, or `p ∉ [0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    Ecdf::new(xs.to_vec()).percentile(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_simple() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::new(vec![15.0, 20.0, 35.0, 40.0, 50.0]);
        // Classic nearest-rank example (Wikipedia).
        assert_eq!(e.percentile(5.0), 15.0);
        assert_eq!(e.percentile(30.0), 20.0);
        assert_eq!(e.percentile(40.0), 20.0);
        assert_eq!(e.percentile(50.0), 35.0);
        assert_eq!(e.percentile(100.0), 50.0);
        assert_eq!(e.percentile(0.0), 15.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(Ecdf::new(vec![3.0, 1.0, 2.0]).median(), 2.0);
        assert_eq!(Ecdf::new(vec![4.0, 1.0, 2.0, 3.0]).median(), 2.0);
    }

    #[test]
    fn handles_duplicates() {
        let e = Ecdf::new(vec![2.0, 2.0, 2.0, 5.0]);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(1.9), 0.0);
        assert_eq!(e.quantile(0.5), 2.0);
    }

    #[test]
    fn curve_spans_range_and_ends_at_one() {
        let e = Ecdf::new(vec![0.0, 1.0, 2.0, 3.0]);
        let c = e.curve(7);
        assert_eq!(c.len(), 7);
        assert_eq!(c[0].0, 0.0);
        assert_eq!(c[6].0, 3.0);
        assert_eq!(c[6].1, 1.0);
        for w in c.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF curve must be nondecreasing");
        }
    }

    #[test]
    fn ks_distance_identical_is_zero() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.ks_distance(&a.clone()), 0.0);
    }

    #[test]
    fn ks_distance_disjoint_is_one() {
        let a = Ecdf::new(vec![0.0, 1.0]);
        let b = Ecdf::new(vec![10.0, 11.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
        assert_eq!(b.ks_distance(&a), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_empty() {
        Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    proptest! {
        #[test]
        fn eval_monotone(xs in proptest::collection::vec(-100f64..100.0, 1..60)) {
            let e = Ecdf::new(xs);
            let mut prev = 0.0;
            let mut x = -110.0;
            while x <= 110.0 {
                let f = e.eval(x);
                prop_assert!(f >= prev);
                prop_assert!((0.0..=1.0).contains(&f));
                prev = f;
                x += 1.0;
            }
        }

        #[test]
        fn quantile_is_a_sample(
            xs in proptest::collection::vec(-100f64..100.0, 1..60),
            q in 0.0f64..=1.0,
        ) {
            let e = Ecdf::new(xs.clone());
            let v = e.quantile(q);
            prop_assert!(xs.contains(&v));
        }

        #[test]
        fn quantile_monotone_in_q(xs in proptest::collection::vec(-100f64..100.0, 1..60)) {
            let e = Ecdf::new(xs);
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=20 {
                let v = e.quantile(i as f64 / 20.0);
                prop_assert!(v >= prev);
                prev = v;
            }
        }

        #[test]
        fn ks_symmetric_and_bounded(
            a in proptest::collection::vec(-50f64..50.0, 1..40),
            b in proptest::collection::vec(-50f64..50.0, 1..40),
        ) {
            let ea = Ecdf::new(a);
            let eb = Ecdf::new(b);
            let d1 = ea.ks_distance(&eb);
            let d2 = eb.ks_distance(&ea);
            prop_assert!((d1 - d2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&d1));
        }
    }
}
