//! Quantile–quantile data against the standard normal.
//!
//! Fig 1 of the paper plots the QQ plot of two innovation processes
//! (Vivaldi and NPS, PlanetLab) against the standard normal; this module
//! produces exactly that series: `(theoretical quantile, sample quantile)`
//! pairs, one per sample, so the harness can print the figure's data.

use crate::normal::norm_ppf;
use serde::{Deserialize, Serialize};

/// One point of a QQ plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QqPoint {
    /// Standard-normal quantile at the sample's plotting position.
    pub theoretical: f64,
    /// The ordered sample value.
    pub sample: f64,
}

/// QQ data of `samples` against the standard normal, using the Blom
/// plotting positions `(i − 3/8)/(n + 1/4)` (the convention used by
/// MATLAB's `qqplot`, which the paper's figures come from).
///
/// The returned points are sorted by theoretical quantile.
///
/// # Panics
/// Panics if fewer than 2 samples are given or any sample is non-finite.
pub fn qq_normal(samples: &[f64]) -> Vec<QqPoint> {
    assert!(samples.len() >= 2, "QQ plot requires at least 2 samples");
    assert!(
        samples.iter().all(|x| x.is_finite()),
        "QQ samples must be finite"
    );
    let n = samples.len();
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, sample)| {
            let p = (i as f64 + 1.0 - 0.375) / (n as f64 + 0.25);
            QqPoint {
                theoretical: norm_ppf(p),
                sample,
            }
        })
        .collect()
}

/// Summary of how well a QQ plot hugs a straight line: the squared
/// correlation between theoretical and sample quantiles.
///
/// For gaussian data this approaches 1; strong departures (heavy tails,
/// skew) pull it down. Returns a value in `[0, 1]`.
pub fn qq_correlation(points: &[QqPoint]) -> f64 {
    assert!(points.len() >= 2, "correlation requires at least 2 points");
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.theoretical).sum::<f64>() / n;
    let my = points.iter().map(|p| p.sample).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for p in points {
        let dx = p.theoretical - mx;
        let dy = p.sample - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy.powi(2) / (sxx * syy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;
    use crate::sample::{pareto, standard_normal};

    #[test]
    fn points_are_sorted_and_match_input_length() {
        let xs = vec![3.0, -1.0, 2.0, 0.5, -2.5];
        let pts = qq_normal(&xs);
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[1].theoretical > w[0].theoretical);
            assert!(w[1].sample >= w[0].sample);
        }
    }

    #[test]
    fn median_sample_maps_near_zero_quantile() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let pts = qq_normal(&xs);
        let mid = &pts[50];
        assert!(mid.theoretical.abs() < 0.02);
        assert_eq!(mid.sample, 50.0);
    }

    #[test]
    fn gaussian_data_is_nearly_linear() {
        let mut rng = stream_rng(50, 0);
        let xs: Vec<f64> = (0..2000)
            .map(|_| 3.0 * standard_normal(&mut rng) + 1.0)
            .collect();
        let r2 = qq_correlation(&qq_normal(&xs));
        assert!(r2 > 0.995, "gaussian QQ r² = {r2}");
    }

    #[test]
    fn heavy_tailed_data_is_less_linear() {
        let mut rng = stream_rng(51, 0);
        let xs: Vec<f64> = (0..2000).map(|_| pareto(&mut rng, 1.0, 1.5)).collect();
        let r2 = qq_correlation(&qq_normal(&xs));
        assert!(r2 < 0.8, "pareto QQ r² = {r2} should be far from 1");
    }

    #[test]
    fn plotting_positions_symmetric() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let pts = qq_normal(&xs);
        for i in 0..5 {
            let a = pts[i].theoretical;
            let b = pts[9 - i].theoretical;
            assert!((a + b).abs() < 1e-12, "positions must be symmetric");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn rejects_single_sample() {
        qq_normal(&[1.0]);
    }
}
