//! Seeded distribution samplers.
//!
//! The network fluctuation models of `ices-netsim` need gaussian,
//! lognormal, exponential and Pareto variates. They are implemented here on
//! top of any [`rand::Rng`] so the workspace does not depend on
//! `rand_distr`, and so every distribution used in an experiment is
//! unit-tested in-tree.

use rand::{Rng, RngExt};

/// Draw a standard-normal variate using the Marsaglia polar method.
///
/// The polar method is branch-heavy but has no trig calls and no state;
/// sampling is not on the simulator's hot path (RTT measurements dominate
/// and those are one normal + one lognormal per probe).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draw a normal variate with the given mean and standard deviation.
///
/// # Panics
/// Panics if `std_dev` is negative or non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev.is_finite() && std_dev >= 0.0,
        "normal std_dev must be finite and non-negative, got {std_dev}"
    );
    mean + std_dev * standard_normal(rng)
}

/// Draw a lognormal variate: `exp(N(mu, sigma))`.
///
/// `mu` and `sigma` parameterize the underlying normal, i.e. the median of
/// the lognormal is `exp(mu)`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draw an exponential variate with the given rate `λ` (mean `1/λ`).
///
/// # Panics
/// Panics if `rate` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
    // Inverse-CDF; (1 - u) avoids ln(0) since u ∈ [0, 1).
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate
}

/// Draw a Pareto variate with scale `x_m > 0` and shape `alpha > 0`.
///
/// Used to model the rare, heavy-tailed RTT spikes (OS scheduling stalls,
/// transient congestion) observed on PlanetLab.
///
/// # Panics
/// Panics if either parameter is not strictly positive.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, scale: f64, shape: f64) -> f64 {
    assert!(scale > 0.0, "pareto scale must be positive, got {scale}");
    assert!(shape > 0.0, "pareto shape must be positive, got {shape}");
    let u: f64 = rng.random();
    scale / (1.0 - u).powf(1.0 / shape)
}

/// Draw a uniform variate in `[low, high)`.
///
/// # Panics
/// Panics if `low > high`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
    assert!(low <= high, "uniform requires low <= high ({low} > {high})");
    low + (high - low) * rng.random::<f64>()
}

/// Sample `k` distinct indices from `0..n` (a simple partial Fisher–Yates).
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct items from {n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.random_range(0..n - i);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineStats;
    use crate::rng::stream_rng;

    fn collect<F: FnMut(&mut rand::rngs::StdRng) -> f64>(
        seed: u64,
        n: usize,
        mut f: F,
    ) -> OnlineStats {
        let mut rng = stream_rng(seed, 0);
        let mut s = OnlineStats::new();
        for _ in 0..n {
            s.push(f(&mut rng));
        }
        s
    }

    #[test]
    fn standard_normal_moments() {
        let s = collect(1, 200_000, standard_normal);
        assert!(s.mean().abs() < 0.02, "mean = {}", s.mean());
        assert!((s.variance() - 1.0).abs() < 0.03, "var = {}", s.variance());
    }

    #[test]
    fn normal_scales_and_shifts() {
        let s = collect(2, 100_000, |r| normal(r, 5.0, 2.0));
        assert!((s.mean() - 5.0).abs() < 0.05);
        assert!((s.variance() - 4.0).abs() < 0.15);
    }

    #[test]
    fn lognormal_median() {
        let mut rng = stream_rng(3, 0);
        let mut xs: Vec<f64> = (0..100_001)
            .map(|_| lognormal(&mut rng, 1.0, 0.5))
            .collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!(
            (median - 1.0_f64.exp()).abs() < 0.05,
            "median = {median}, want ~e"
        );
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let s = collect(4, 100_000, |r| exponential(r, 0.25));
        assert!((s.mean() - 4.0).abs() < 0.1, "mean = {}", s.mean());
        assert!(s.min() >= 0.0);
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let s = collect(5, 50_000, |r| pareto(r, 3.0, 2.5));
        assert!(s.min() >= 3.0);
        // E[X] = α x_m / (α − 1) = 2.5·3/1.5 = 5.
        assert!((s.mean() - 5.0).abs() < 0.15, "mean = {}", s.mean());
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let s = collect(6, 100_000, |r| uniform(r, -2.0, 6.0));
        assert!(s.min() >= -2.0 && s.max() < 6.0);
        assert!((s.mean() - 2.0).abs() < 0.05);
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = stream_rng(7, 0);
        for _ in 0..100 {
            let k = rng.random_range(0..=20);
            let sample = sample_indices(&mut rng, 20, k);
            assert_eq!(sample.len(), k);
            let mut sorted = sample.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in {sample:?}");
            assert!(sample.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_indices_full_population_is_permutation() {
        let mut rng = stream_rng(8, 0);
        let mut sample = sample_indices(&mut rng, 10, 10);
        sample.sort_unstable();
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversample() {
        let mut rng = stream_rng(9, 0);
        sample_indices(&mut rng, 3, 4);
    }

    #[test]
    #[should_panic(expected = "exponential rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let mut rng = stream_rng(10, 0);
        exponential(&mut rng, 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = collect(11, 1000, standard_normal);
        let b = collect(11, 1000, standard_normal);
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.variance(), b.variance());
    }
}
