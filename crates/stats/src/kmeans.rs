//! k-means clustering with k-means++ seeding.
//!
//! §3.3 of the paper shows that deploying Surveyors at the *cluster heads*
//! of a simple k-means clustering of the coordinate space achieves good
//! representativeness with roughly 1% of nodes (vs ~8% for random
//! placement). This module clusters points in R^d and reports, per
//! cluster, the member closest to the centroid (the "cluster head").

use crate::rng::stream_rng;
use rand::{Rng, RngExt};

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Final centroids, one per cluster (may be fewer than requested `k`
    /// if `k` exceeded the number of distinct points).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index assigned to each input point.
    pub assignments: Vec<usize>,
    /// For each cluster, the index of the input point nearest its centroid.
    pub heads: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f64,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Run k-means on `points` (each a d-vector) with k-means++ seeding.
///
/// Deterministic for a given `seed`. Iterates Lloyd's algorithm until the
/// assignment is stable or `max_iter` is reached.
///
/// # Panics
/// Panics if `points` is empty, `k` is zero or exceeds the point count, or
/// dimensions are inconsistent.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64, max_iter: usize) -> KmeansResult {
    assert!(!points.is_empty(), "kmeans requires at least one point");
    assert!(k >= 1, "kmeans requires k >= 1");
    assert!(
        k <= points.len(),
        "kmeans k = {k} exceeds point count {}",
        points.len()
    );
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "kmeans points must share one dimensionality"
    );

    let mut rng = stream_rng(seed, KMEANS_STREAM);
    let mut centroids = plus_plus_seed(points, k, &mut rng);

    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for iter in 0..max_iter {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = nearest(p, &centroids).0;
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if iter > 0 && !changed {
            break;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if counts[c] > 0 {
                for (v, s) in centroid.iter_mut().zip(&sums[c]) {
                    *v = s / counts[c] as f64;
                }
            }
            // An emptied cluster keeps its previous centroid; with
            // k-means++ seeding this is rare and harmless.
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &c)| sq_dist(p, &centroids[c]))
        .sum();

    let heads = centroids
        .iter()
        .enumerate()
        .map(|(c, centroid)| {
            points
                .iter()
                .enumerate()
                .filter(|(i, _)| assignments[*i] == c)
                .min_by(|(_, a), (_, b)| sq_dist(a, centroid).total_cmp(&sq_dist(b, centroid)))
                // An empty cluster's head falls back to the globally
                // nearest point to its centroid.
                .map(|(i, _)| i)
                .unwrap_or_else(|| {
                    points
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            sq_dist(a, centroid).total_cmp(&sq_dist(b, centroid))
                        })
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                })
        })
        .collect();

    KmeansResult {
        centroids,
        assignments,
        heads,
        inertia,
        iterations,
    }
}

/// Stream id reserved for k-means seeding, so callers sharing a master
/// seed with other components do not correlate with the clustering.
const KMEANS_STREAM: u64 = 0x6B6D_6561_6E73; // "kmeans"

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(p, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: first centroid uniform, subsequent ones with
/// probability proportional to squared distance from the nearest chosen
/// centroid.
fn plus_plus_seed<R: Rng>(points: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick uniformly.
            rng.random_range(0..points.len())
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        let newest = points[idx].clone();
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, &newest);
            if d < d2[i] {
                d2[i] = d;
            }
        }
        centroids.push(newest);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;
    use crate::sample::normal;

    fn blob(rng: &mut rand::rngs::StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| vec![normal(rng, cx, 0.5), normal(rng, cy, 0.5)])
            .collect()
    }

    #[test]
    fn separates_well_separated_blobs() {
        let mut rng = stream_rng(1, 0);
        let mut pts = blob(&mut rng, 0.0, 0.0, 50);
        pts.extend(blob(&mut rng, 20.0, 0.0, 50));
        pts.extend(blob(&mut rng, 0.0, 20.0, 50));
        let r = kmeans(&pts, 3, 7, 100);
        assert_eq!(r.centroids.len(), 3);
        // Each blob must be internally consistent.
        for blob_range in [0..50, 50..100, 100..150] {
            let first = r.assignments[blob_range.start];
            assert!(
                blob_range.clone().all(|i| r.assignments[i] == first),
                "blob {blob_range:?} split across clusters"
            );
        }
    }

    #[test]
    fn heads_belong_to_their_cluster() {
        let mut rng = stream_rng(2, 0);
        let mut pts = blob(&mut rng, 0.0, 0.0, 30);
        pts.extend(blob(&mut rng, 10.0, 10.0, 30));
        let r = kmeans(&pts, 2, 3, 100);
        for (c, &head) in r.heads.iter().enumerate() {
            assert_eq!(
                r.assignments[head], c,
                "cluster head must be a member of its own cluster"
            );
        }
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, -(i as f64)]).collect();
        let r = kmeans(&pts, 6, 11, 100);
        assert!(r.inertia < 1e-18, "inertia = {}", r.inertia);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![0.0, 2.0],
            vec![2.0, 2.0],
        ];
        let r = kmeans(&pts, 1, 5, 100);
        assert!((r.centroids[0][0] - 1.0).abs() < 1e-12);
        assert!((r.centroids[0][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut rng = stream_rng(4, 0);
        let pts = blob(&mut rng, 0.0, 0.0, 40);
        let a = kmeans(&pts, 4, 9, 100);
        let b = kmeans(&pts, 4, 9, 100);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.heads, b.heads);
    }

    #[test]
    fn more_clusters_never_increase_inertia_much() {
        let mut rng = stream_rng(5, 0);
        let mut pts = blob(&mut rng, 0.0, 0.0, 60);
        pts.extend(blob(&mut rng, 8.0, 8.0, 60));
        let i2 = kmeans(&pts, 2, 13, 200).inertia;
        let i6 = kmeans(&pts, 6, 13, 200).inertia;
        assert!(
            i6 <= i2 * 1.05,
            "k=6 inertia {i6} should not exceed k=2 inertia {i2}"
        );
    }

    #[test]
    fn handles_duplicate_points() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let r = kmeans(&pts, 3, 17, 50);
        assert!(r.inertia < 1e-18);
        assert!(r.assignments.iter().all(|&a| a < r.centroids.len()));
    }

    #[test]
    #[should_panic(expected = "exceeds point count")]
    fn rejects_k_above_n() {
        kmeans(&[vec![0.0]], 2, 1, 10);
    }
}
