//! A small hand-rolled Rust lexer for the audit rule engine.
//!
//! The engine only needs to see *code* tokens — identifiers and
//! punctuation with accurate line numbers — while reliably skipping
//! everything a textual grep would trip over: line and (nested) block
//! comments, string / char / byte / raw-string literals, lifetimes,
//! and numeric literals. Comments are not discarded: their text and
//! line span are kept so `// audit:allow(RULE): reason` suppressions
//! can be parsed from them.
//!
//! This is deliberately not a full Rust lexer (no registry access means
//! no `syn`); it implements exactly the token-boundary rules that keep
//! rule triggers like `unwrap(` or `HashMap` from being matched inside
//! literals or comments.

/// What kind of code token this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `fn`, `HashMap`, ...).
    Ident(String),
    /// A single punctuation character (`(`, `:`, `#`, ...).
    Punct(char),
    /// A literal (string, raw string, char, byte, number), with its
    /// raw source text (prefix and quotes included) retained — the
    /// STREAM01 tag analysis reads hex and string tag literals.
    Literal(String),
}

/// One code token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
}

/// One comment (line or block, doc or plain) with its text and span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` for `//`).
    pub end_line: u32,
    /// The comment body, without the `//` / `/*` markers.
    pub text: String,
}

/// The lexer's output: code tokens plus retained comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// The raw source text between two char indices (literal capture).
    fn slice(&self, from: usize, to: usize) -> String {
        self.chars[from.min(self.chars.len())..to.min(self.chars.len())]
            .iter()
            .collect()
    }

    /// Advance one char, tracking newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consume a `//` comment (cursor on the first `/`).
    fn line_comment(&mut self) -> Comment {
        let line = self.line;
        self.i += 2;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.i += 1;
        }
        Comment {
            line,
            end_line: line,
            text,
        }
    }

    /// Consume a `/* ... */` comment, honouring Rust's nesting.
    fn block_comment(&mut self) -> Comment {
        let line = self.line;
        self.i += 2;
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.i += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.i += 2;
                }
                (Some(_), _) => {
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                (None, _) => break, // unterminated: tolerate, EOF ends it
            }
        }
        Comment {
            line,
            end_line: self.line,
            text,
        }
    }

    /// Consume a `"..."` string body (cursor on the opening quote).
    fn quoted_string(&mut self) {
        self.bump(); // opening "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // whatever is escaped, including \" and \\
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consume a raw string `r##"..."##` with `hashes` `#`s; the cursor
    /// sits on the opening quote.
    fn raw_string(&mut self, hashes: usize) {
        self.bump(); // opening "
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                self.i += hashes;
                break;
            }
        }
    }

    /// Consume a char/byte-char literal body (cursor on the opening `'`).
    fn char_literal(&mut self) {
        self.bump(); // opening '
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                '\n' => break, // malformed; don't run away
                _ => {}
            }
        }
    }

    /// Consume a numeric literal (cursor on the first digit). Precision
    /// here is deliberately loose — the content is discarded — but the
    /// consumption must not swallow range dots (`0..n`) or a method dot
    /// (`1.max(2)`).
    fn number(&mut self) {
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.i += 1;
            } else if c == '.'
                && self.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false)
            {
                self.i += 1; // fraction part follows
            } else if (c == '+' || c == '-')
                && self
                    .chars
                    .get(self.i.wrapping_sub(1))
                    .map(|p| *p == 'e' || *p == 'E')
                    .unwrap_or(false)
                && self.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false)
            {
                self.i += 1; // exponent sign: 1e-5
            } else {
                break;
            }
        }
    }
}

/// Does `word` prefix a string-ish literal (so `word` is not an
/// identifier)? Covers `r"`, `r#"`, `b"`, `br#"`, `b'`, `c"`, `cr#"`.
fn literal_prefix(word: &str, next: Option<char>) -> bool {
    match word {
        "r" | "b" | "br" | "c" | "cr" => matches!(next, Some('"') | Some('#')) || (word == "b" && next == Some('\'')),
        _ => false,
    }
}

/// Lex `src` into code tokens and comments. Never fails: malformed
/// input degrades to punctuation tokens, it cannot make the lexer
/// report identifiers from inside literals or comments.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let comment = cur.line_comment();
            out.comments.push(comment);
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let comment = cur.block_comment();
            out.comments.push(comment);
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let line = cur.line;
            let start = cur.i;
            cur.quoted_string();
            out.tokens.push(Token {
                kind: TokKind::Literal(cur.slice(start, cur.i)),
                line,
            });
            continue;
        }
        // Lifetime vs char literal.
        if c == '\'' {
            let line = cur.line;
            let next = cur.peek(1);
            let after = cur.peek(2);
            let is_lifetime = match next {
                Some(n) if is_ident_start(n) => after != Some('\''),
                _ => false,
            };
            if is_lifetime {
                cur.bump(); // '
                while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
                    cur.bump();
                }
                // Lifetimes carry no rule signal; drop them.
            } else {
                let start = cur.i;
                cur.char_literal();
                out.tokens.push(Token {
                    kind: TokKind::Literal(cur.slice(start, cur.i)),
                    line,
                });
            }
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let line = cur.line;
            let start = cur.i;
            cur.number();
            out.tokens.push(Token {
                kind: TokKind::Literal(cur.slice(start, cur.i)),
                line,
            });
            continue;
        }
        // Identifiers, keywords, and prefixed literals.
        if is_ident_start(c) {
            let line = cur.line;
            let word_start = cur.i;
            let mut word = String::new();
            while let Some(n) = cur.peek(0) {
                if is_ident_continue(n) {
                    word.push(n);
                    cur.bump();
                } else {
                    break;
                }
            }
            if literal_prefix(&word, cur.peek(0)) {
                match cur.peek(0) {
                    Some('"') => {
                        // r" / b" / c" — raw with zero hashes behaves
                        // like quoted for r, and b/c strings still
                        // honour escapes; treat b"/c" as quoted.
                        if word.starts_with('r') || word.ends_with('r') {
                            cur.raw_string(0);
                        } else {
                            cur.quoted_string();
                        }
                        out.tokens.push(Token {
                            kind: TokKind::Literal(cur.slice(word_start, cur.i)),
                            line,
                        });
                    }
                    Some('#') => {
                        // Count hashes; then either a raw string opens
                        // or (r# + ident char) it was a raw identifier.
                        let mut hashes = 0usize;
                        while cur.peek(hashes) == Some('#') {
                            hashes += 1;
                        }
                        if cur.peek(hashes) == Some('"') {
                            cur.i += hashes;
                            cur.raw_string(hashes);
                            out.tokens.push(Token {
                                kind: TokKind::Literal(cur.slice(word_start, cur.i)),
                                line,
                            });
                        } else if word == "r" && hashes == 1 {
                            // Raw identifier r#word: emit the word.
                            cur.i += 1; // the #
                            let mut raw = String::new();
                            while let Some(n) = cur.peek(0) {
                                if is_ident_continue(n) {
                                    raw.push(n);
                                    cur.bump();
                                } else {
                                    break;
                                }
                            }
                            out.tokens.push(Token {
                                kind: TokKind::Ident(raw),
                                line,
                            });
                        } else {
                            // `b#...`? Not Rust; emit the word and move on.
                            out.tokens.push(Token {
                                kind: TokKind::Ident(word),
                                line,
                            });
                        }
                    }
                    Some('\'') => {
                        // b'x'
                        cur.char_literal();
                        out.tokens.push(Token {
                            kind: TokKind::Literal(cur.slice(word_start, cur.i)),
                            line,
                        });
                    }
                    _ => out.tokens.push(Token {
                        kind: TokKind::Ident(word),
                        line,
                    }),
                }
            } else {
                out.tokens.push(Token {
                    kind: TokKind::Ident(word),
                    line,
                });
            }
            continue;
        }
        // Everything else: single punctuation char.
        let line = cur.line;
        cur.bump();
        out.tokens.push(Token {
            kind: TokKind::Punct(c),
            line,
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(w) => Some(w),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn skips_line_and_block_comments() {
        let src = "fn a() {} // unwrap() HashMap\n/* expect( */ fn b() {}";
        let words = idents(src);
        assert_eq!(words, ["fn", "a", "fn", "b"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap()"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still comment */ fn f() {}";
        assert_eq!(idents(src), ["fn", "f"]);
        assert_eq!(lex(src).comments.len(), 1);
    }

    #[test]
    fn strings_hide_their_content() {
        let src = r#"let s = "unwrap() HashMap \" still"; let t = 'x';"#;
        let words = idents(src);
        assert_eq!(words, ["let", "s", "let", "t"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"has \"quote\" and unwrap()\"#; fn g() {}";
        assert_eq!(idents(src), ["let", "s", "fn", "g"]);
    }

    #[test]
    fn byte_and_c_strings() {
        let src = "let a = b\"unwrap()\"; let b2 = br#\"expect(\"#; let c2 = c\"HashMap\";";
        assert_eq!(idents(src), ["let", "a", "let", "b2", "let", "c2"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { 'y'; loop { break; } x }";
        let words = idents(src);
        assert!(words.contains(&"str".to_string()));
        // The char literal 'y' must not have eaten code.
        assert!(words.contains(&"loop".to_string()));
    }

    #[test]
    fn raw_identifiers() {
        let src = "let r#type = 3; r#unwrap();";
        let words = idents(src);
        assert_eq!(words, ["let", "type", "unwrap"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "for i in 0..10 { let x = 1.5e-3; let y = 2.max(i); }";
        let words = idents(src);
        assert!(words.contains(&"max".to_string()));
        // Two dots of the range must survive as puncts.
        let dots = lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct('.'))
            .count();
        assert!(dots >= 3, "range dots and method dot survive: {dots}");
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "fn a() {}\n\nfn b() {\n    x.unwrap()\n}\n";
        let lexed = lex(src);
        let unwrap_tok = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("unwrap".into()));
        assert_eq!(unwrap_tok.map(|t| t.line), Some(4));
    }

    #[test]
    fn multiline_strings_keep_line_count() {
        let src = "let s = \"line\nline\nline\";\nx.unwrap()";
        let lexed = lex(src);
        let unwrap_tok = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("unwrap".into()));
        assert_eq!(unwrap_tok.map(|t| t.line), Some(4));
    }

    #[test]
    fn block_comment_spans_lines() {
        let src = "/* a\nb\nc */ fn f() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
        assert_eq!(lexed.tokens[0].line, 3);
    }
}
