//! The audit rule set and per-file rule engine.
//!
//! Rules (see DESIGN.md "Determinism invariants & enforcement"):
//!
//! * **DET01** — no `HashMap`/`HashSet` in determinism-critical crates:
//!   their iteration order depends on a randomly seeded hasher, so any
//!   loop over one silently breaks bit-for-bit reproducibility. Use
//!   `BTreeMap`/`BTreeSet`.
//! * **DET02** — no wall-clock or OS-entropy sources (`Instant::now`,
//!   `SystemTime`, `thread_rng`, `from_entropy`) outside `crates/bench`:
//!   every random draw must come from a named seeded nonce stream.
//! * **DET03** — no raw `thread::spawn`/`thread::scope`/`thread::Builder`
//!   outside `crates/par`: all parallelism goes through `ices-par`, whose
//!   entry points are order-preserving by construction (the persistent
//!   worker pool included — its named `Builder` spawns live in par).
//! * **PANIC01** — no `.unwrap()`/`.expect(` in non-test library code
//!   (tests, examples, and binaries are exempt): probe/detector paths
//!   must degrade through `Result`s, not abort a simulation.
//! * **SAFE01** — every crate root carries `#![forbid(unsafe_code)]`.
//!   Sole exception: `crates/par` may carry `#![deny(unsafe_code)]`
//!   instead — its worker pool erases closure lifetimes behind a
//!   completion barrier, and that one audited module opts in with
//!   `#[allow(unsafe_code)]` while the rest of the crate stays denied.
//! * **OBS01** — no wall-clock or entropy source anywhere in
//!   `crates/obs`: observability time flows exclusively through the
//!   `ices_obs::Clock` trait, and the only sanctioned wall-clock impl
//!   lives in `crates/bench` (`WallClock`). Inside `crates/obs` this
//!   rule supersedes DET02 — same triggers, sharper message.
//! * **ALLOW01** — a malformed `audit:allow` (unknown rule or missing
//!   reason). Never suppressible: the reason *is* the audit trail.
//!
//! A finding is suppressed only by an inline
//! `// audit:allow(RULE): reason` comment on the same line or the line
//! above; the mandatory reason feeds the allowlist inventory.

use crate::lexer::{lex, Comment, TokKind, Token};
use serde::Serialize;

/// Rule identifiers in report order.
pub const RULE_IDS: [&str; 7] = [
    "DET01", "DET02", "DET03", "PANIC01", "SAFE01", "OBS01", "ALLOW01",
];

/// Crates whose simulation state must stay bit-for-bit reproducible.
/// (`stats` is the seeded-RNG substrate itself and `bench` is wall-clock
/// territory by design; `adhoc` is the context explicit CLI paths get,
/// which arms every rule.)
pub const DETERMINISM_CRITICAL: [&str; 11] = [
    "coord", "netsim", "vivaldi", "nps", "core", "attack", "sim", "par", "obs", "ices", "adhoc",
];

/// How a file participates in its crate (decides PANIC01 exemptions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every rule applies.
    Lib,
    /// `src/bin/*` or `src/main.rs`: PANIC01 exempt.
    Bin,
}

/// Where a file sits in the workspace, for rule applicability.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path, forward slashes (used in findings).
    pub path: String,
    /// Crate directory name (`core`, `sim`, ...; `ices` for the root
    /// facade crate, `adhoc` for explicit CLI paths).
    pub crate_name: String,
    pub kind: FileKind,
    /// Is this a crate root (`src/lib.rs`), where SAFE01 applies?
    pub is_crate_root: bool,
}

/// One rule violation.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
    /// True when an `audit:allow` covers this finding.
    pub suppressed: bool,
    /// The allow's reason when suppressed (empty otherwise).
    pub reason: String,
}

/// One `audit:allow(RULE): reason` comment, for the inventory.
#[derive(Debug, Clone, Serialize)]
pub struct AllowEntry {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub reason: String,
    /// Did any finding actually use this suppression?
    pub used: bool,
}

/// Everything the engine learned about one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub allows: Vec<AllowEntry>,
}

fn ident_at<'a>(tokens: &'a [Token], i: usize) -> Option<&'a str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(w)) => Some(w.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Parse the attribute starting at `tokens[i]` (`#` `[` ...): returns
/// (index after the closing `]`, compact rendering like `cfg(test)`).
fn parse_attr(tokens: &[Token], i: usize) -> (usize, String) {
    let mut rendered = String::new();
    let mut j = i + 2; // past '#' '['
    let mut depth = 1usize;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct('[') => {
                depth += 1;
                rendered.push('[');
            }
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, rendered);
                }
                rendered.push(']');
            }
            TokKind::Punct(c) => rendered.push(*c),
            TokKind::Ident(w) => rendered.push_str(w),
            TokKind::Literal => rendered.push('"'),
        }
        j += 1;
    }
    (j, rendered)
}

/// Does this attribute gate its item to test builds? `#[test]`,
/// `#[cfg(test)]`, and any `cfg(...)` mentioning `test` positively
/// (e.g. `cfg(all(test, unix))`) count; `cfg(not(test))` and
/// `cfg_attr(test, ...)` do not.
fn attr_is_test(attr: &str) -> bool {
    if attr == "test" {
        return true;
    }
    attr.starts_with("cfg(") && attr.contains("test") && !attr.contains("not(test")
}

/// Line spans (inclusive) of items gated to test builds: an attribute
/// recognised by [`attr_is_test`] exempts the whole following item —
/// to its closing brace, or to the `;` of a braceless item.
fn test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // `#[...]` (skip inner attributes `#![...]`).
        if punct_at(tokens, i) == Some('#') && punct_at(tokens, i + 1) == Some('[') {
            let start_line = tokens[i].line;
            let (after, attr) = parse_attr(tokens, i);
            if !attr_is_test(&attr) {
                i = after;
                continue;
            }
            // Skip any further attributes on the same item.
            let mut j = after;
            while punct_at(tokens, j) == Some('#') && punct_at(tokens, j + 1) == Some('[') {
                j = parse_attr(tokens, j).0;
            }
            // Consume the item: first `;` before a brace ends it, else
            // the matching `}` of its first brace.
            let mut depth = 0i64;
            let mut end_line = start_line;
            while j < tokens.len() {
                end_line = tokens[j].line;
                match tokens[j].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    TokKind::Punct(';') if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            spans.push((start_line, end_line));
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// An allow plus the line range it covers (its own line(s) and the
/// line after, so both trailing and standalone comments work).
struct CoveredAllow {
    entry: AllowEntry,
    covers: (u32, u32),
}

/// Extract `audit:allow(RULE): reason` suppressions from comments.
/// Malformed allows (unknown rule, missing reason) become ALLOW01
/// findings instead of suppressions.
fn parse_allows(ctx: &FileContext, comments: &[Comment]) -> (Vec<CoveredAllow>, Vec<Finding>) {
    const MARKER: &str = "audit:allow(";
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for comment in comments {
        // The suppression must be the comment's entire content (leading
        // whitespace aside): `// audit:allow(RULE): reason`. Mentions of
        // the syntax in the middle of prose (like this one) stay inert.
        let rest = comment.text.trim_start();
        if let Some(after) = rest.strip_prefix(MARKER) {
            let Some(close) = after.find(')') else {
                malformed.push(Finding {
                    file: ctx.path.clone(),
                    line: comment.line,
                    rule: "ALLOW01".into(),
                    message: "unterminated audit:allow(...)".into(),
                    suppressed: false,
                    reason: String::new(),
                });
                continue;
            };
            let rule = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            if !RULE_IDS.contains(&rule.as_str()) || rule == "ALLOW01" {
                malformed.push(Finding {
                    file: ctx.path.clone(),
                    line: comment.line,
                    rule: "ALLOW01".into(),
                    message: format!("audit:allow names unknown rule `{rule}`"),
                    suppressed: false,
                    reason: String::new(),
                });
                continue;
            }
            // Mandatory `: reason` — the reason is the audit trail.
            let trimmed = tail.trim_start();
            let reason = trimmed
                .strip_prefix(':')
                .map(|r| r.lines().next().unwrap_or("").trim().to_string())
                .unwrap_or_default();
            if reason.is_empty() {
                malformed.push(Finding {
                    file: ctx.path.clone(),
                    line: comment.line,
                    rule: "ALLOW01".into(),
                    message: format!(
                        "audit:allow({rule}) is missing its mandatory `: reason`"
                    ),
                    suppressed: false,
                    reason: String::new(),
                });
                continue;
            }
            allows.push(CoveredAllow {
                entry: AllowEntry {
                    file: ctx.path.clone(),
                    line: comment.line,
                    rule,
                    reason,
                    used: false,
                },
                covers: (comment.line, comment.end_line + 1),
            });
        }
    }
    (allows, malformed)
}

/// Audit one file's source under the given context.
pub fn audit_source(ctx: &FileContext, src: &str) -> FileReport {
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let spans = test_spans(tokens);
    let (mut allows, mut findings) = parse_allows(ctx, &lexed.comments);

    let critical = DETERMINISM_CRITICAL.contains(&ctx.crate_name.as_str());
    let det02_applies = ctx.crate_name != "bench";
    let det03_applies = ctx.crate_name != "par";
    let panic01_applies = ctx.kind == FileKind::Lib;
    // Inside crates/obs the wall-clock rule carries the observability
    // contract's name and message (and supersedes DET02 so one hazard
    // never produces two findings).
    let obs01 = ctx.crate_name == "obs";

    let push = |rule: &str, line: u32, message: String, out: &mut Vec<Finding>| {
        out.push(Finding {
            file: ctx.path.clone(),
            line,
            rule: rule.into(),
            message,
            suppressed: false,
            reason: String::new(),
        });
    };

    // SAFE01: crate roots must forbid unsafe code via the inner
    // attribute `#![forbid(unsafe_code)]`. `crates/par` alone may use
    // `#![deny(unsafe_code)]` — the worker pool's lifetime erasure is
    // the workspace's one sanctioned unsafe block, and deny (unlike
    // forbid) lets exactly that module opt in with `#[allow]` while
    // every other file in the crate stays refused.
    if ctx.is_crate_root {
        let par_deny_ok = ctx.crate_name == "par";
        let mut found = false;
        for i in 0..tokens.len() {
            let level_ok = match ident_at(tokens, i + 3) {
                Some("forbid") => true,
                Some("deny") => par_deny_ok,
                _ => false,
            };
            if punct_at(tokens, i) == Some('#')
                && punct_at(tokens, i + 1) == Some('!')
                && punct_at(tokens, i + 2) == Some('[')
                && level_ok
                && punct_at(tokens, i + 4) == Some('(')
                && ident_at(tokens, i + 5) == Some("unsafe_code")
            {
                found = true;
                break;
            }
        }
        if !found {
            let wanted = if par_deny_ok {
                "crate root is missing `#![forbid(unsafe_code)]` \
                 (or, for `crates/par` only, `#![deny(unsafe_code)]`)"
            } else {
                "crate root is missing `#![forbid(unsafe_code)]`"
            };
            push("SAFE01", 1, wanted.into(), &mut findings);
        }
    }

    for i in 0..tokens.len() {
        let Some(word) = ident_at(tokens, i) else {
            continue;
        };
        let line = tokens[i].line;
        match word {
            "HashMap" | "HashSet" if critical => {
                let alt = if word == "HashMap" { "BTreeMap" } else { "BTreeSet" };
                push(
                    "DET01",
                    line,
                    format!(
                        "`{word}` has seed-dependent iteration order in a \
                         determinism-critical crate; use `{alt}`"
                    ),
                    &mut findings,
                );
            }
            "SystemTime" | "thread_rng" | "from_entropy" if det02_applies => {
                if obs01 {
                    push(
                        "OBS01",
                        line,
                        format!(
                            "`{word}` in ices-obs; observability time must flow \
                             through the `Clock` trait (the bench `WallClock` is \
                             the only sanctioned wall-clock impl)"
                        ),
                        &mut findings,
                    );
                } else {
                    push(
                        "DET02",
                        line,
                        format!(
                            "`{word}` is a wall-clock/entropy source; draw from a \
                             named seeded nonce stream instead"
                        ),
                        &mut findings,
                    );
                }
            }
            "Instant" if det02_applies => {
                if punct_at(tokens, i + 1) == Some(':')
                    && punct_at(tokens, i + 2) == Some(':')
                    && ident_at(tokens, i + 3) == Some("now")
                {
                    if obs01 {
                        push(
                            "OBS01",
                            line,
                            "`Instant::now` in ices-obs; observability time must \
                             flow through the `Clock` trait (the bench `WallClock` \
                             is the only sanctioned wall-clock impl)"
                                .into(),
                            &mut findings,
                        );
                    } else {
                        push(
                            "DET02",
                            line,
                            "`Instant::now` is a wall-clock source; only `crates/bench` \
                             may time things"
                                .into(),
                            &mut findings,
                        );
                    }
                }
            }
            "thread" if det03_applies => {
                if punct_at(tokens, i + 1) == Some(':')
                    && punct_at(tokens, i + 2) == Some(':')
                    && matches!(
                        ident_at(tokens, i + 3),
                        Some("spawn") | Some("scope") | Some("Builder")
                    )
                {
                    let what = ident_at(tokens, i + 3).unwrap_or("spawn");
                    push(
                        "DET03",
                        line,
                        format!(
                            "raw `thread::{what}` outside `crates/par`; all \
                             parallelism must go through ices-par's \
                             order-preserving entry points"
                        ),
                        &mut findings,
                    );
                }
            }
            "unwrap" | "expect" if panic01_applies => {
                let is_call = punct_at(tokens, i - 1_usize.min(i)) == Some('.')
                    && i > 0
                    && punct_at(tokens, i + 1) == Some('(')
                    && (word == "expect" || punct_at(tokens, i + 2) == Some(')'));
                if is_call && !in_spans(&spans, line) {
                    push(
                        "PANIC01",
                        line,
                        format!(
                            "`.{word}(` in non-test library code; return a typed \
                             error (or justify with `// audit:allow(PANIC01): reason`)"
                        ),
                        &mut findings,
                    );
                }
            }
            _ => {}
        }
    }

    // Apply suppressions. ALLOW01 findings are never suppressible.
    for finding in &mut findings {
        if finding.rule == "ALLOW01" {
            continue;
        }
        for allow in &mut allows {
            if allow.entry.rule == finding.rule
                && allow.covers.0 <= finding.line
                && finding.line <= allow.covers.1
            {
                finding.suppressed = true;
                finding.reason = allow.entry.reason.clone();
                allow.entry.used = true;
                break;
            }
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule.clone()).cmp(&(b.line, b.rule.clone())));
    FileReport {
        findings,
        allows: allows.into_iter().map(|a| a.entry).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx() -> FileContext {
        FileContext {
            path: "adhoc/lib.rs".into(),
            crate_name: "adhoc".into(),
            kind: FileKind::Lib,
            is_crate_root: false,
        }
    }

    fn rules_of(report: &FileReport) -> Vec<(&str, u32, bool)> {
        report
            .findings
            .iter()
            .map(|f| (f.rule.as_str(), f.line, f.suppressed))
            .collect()
    }

    #[test]
    fn unwrap_in_lib_is_flagged_with_line() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("PANIC01", 2, false)]);
    }

    #[test]
    fn unwrap_inside_cfg_test_mod_is_exempt() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("PANIC01", 2, false)]);
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 3) }\n";
        let r = audit_source(&lib_ctx(), src);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn allow_on_same_line_suppresses_and_is_inventoried() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // audit:allow(PANIC01): index proven in bounds above\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("PANIC01", 2, true)]);
        assert_eq!(r.allows.len(), 1);
        assert!(r.allows[0].used);
        assert_eq!(r.allows[0].reason, "index proven in bounds above");
    }

    #[test]
    fn allow_on_line_above_suppresses() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    // audit:allow(PANIC01): caller guarantees Some\n    x.unwrap()\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("PANIC01", 3, true)]);
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // audit:allow(PANIC01)\n}\n";
        let r = audit_source(&lib_ctx(), src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"ALLOW01"), "{rules:?}");
        // And the original finding stays unsuppressed.
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == "PANIC01" && !f.suppressed));
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // audit:allow(DET01): wrong rule\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == "PANIC01" && !f.suppressed));
        assert!(!r.allows[0].used);
    }

    #[test]
    fn det01_only_in_critical_crates() {
        let src = "use std::collections::HashMap;\n";
        let mut ctx = lib_ctx();
        let r = audit_source(&ctx, src);
        assert_eq!(rules_of(&r), [("DET01", 1, false)]);
        ctx.crate_name = "stats".into();
        let r = audit_source(&ctx, src);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn det02_exempts_bench() {
        let src = "let t = Instant::now();\nlet r = thread_rng();\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(
            rules_of(&r),
            [("DET02", 1, false), ("DET02", 2, false)]
        );
        let mut bench = lib_ctx();
        bench.crate_name = "bench".into();
        assert!(audit_source(&bench, src).findings.is_empty());
    }

    #[test]
    fn det03_exempts_par() {
        let src = "std::thread::scope(|s| { s.spawn(|| {}); });\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("DET03", 1, false)]);
        let mut par = lib_ctx();
        par.crate_name = "par".into();
        assert!(audit_source(&par, src).findings.is_empty());
    }

    #[test]
    fn obs_crate_reports_wallclock_as_obs01_not_det02() {
        let src = "let t = Instant::now();\nlet s = SystemTime::now();\n";
        let mut obs = lib_ctx();
        obs.crate_name = "obs".into();
        let r = audit_source(&obs, src);
        assert_eq!(rules_of(&r), [("OBS01", 1, false), ("OBS01", 2, false)]);
        assert!(r.findings.iter().all(|f| f.message.contains("Clock")));
        // Elsewhere the same triggers stay DET02 — no double reporting.
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("DET02", 1, false), ("DET02", 2, false)]);
    }

    #[test]
    fn obs_crate_is_determinism_critical() {
        let src = "use std::collections::HashMap;\n";
        let mut obs = lib_ctx();
        obs.crate_name = "obs".into();
        assert_eq!(rules_of(&audit_source(&obs, src)), [("DET01", 1, false)]);
    }

    #[test]
    fn safe01_checks_crate_roots_only() {
        let src = "pub fn f() {}\n";
        let mut ctx = lib_ctx();
        assert!(audit_source(&ctx, src).findings.is_empty());
        ctx.is_crate_root = true;
        assert_eq!(rules_of(&audit_source(&ctx, src)), [("SAFE01", 1, false)]);
        let good = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(audit_source(&ctx, good).findings.is_empty());
    }

    #[test]
    fn safe01_accepts_deny_for_par_crate_root_only() {
        let deny = "#![deny(unsafe_code)]\npub fn f() {}\n";
        let mut par = lib_ctx();
        par.crate_name = "par".into();
        par.is_crate_root = true;
        assert!(
            audit_source(&par, deny).findings.is_empty(),
            "par may deny instead of forbid"
        );
        // Everyone else must still forbid — deny is not enough.
        let mut other = lib_ctx();
        other.is_crate_root = true;
        assert_eq!(rules_of(&audit_source(&other, deny)), [("SAFE01", 1, false)]);
        // And par with neither attribute is still flagged.
        let bare = "pub fn f() {}\n";
        assert_eq!(rules_of(&audit_source(&par, bare)), [("SAFE01", 1, false)]);
    }

    #[test]
    fn det03_flags_thread_builder_outside_par() {
        let src = "let h = std::thread::Builder::new().spawn(|| {});\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("DET03", 1, false)]);
        assert!(r.findings[0].message.contains("thread::Builder"));
        let mut par = lib_ctx();
        par.crate_name = "par".into();
        assert!(audit_source(&par, src).findings.is_empty());
    }

    #[test]
    fn bins_are_panic01_exempt_but_not_det_exempt() {
        let src = "fn main() { Some(1).unwrap(); let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let mut ctx = lib_ctx();
        ctx.kind = FileKind::Bin;
        let report = audit_source(&ctx, src);
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, ["DET01", "DET01"]);
    }

    #[test]
    fn triggers_inside_literals_and_comments_are_invisible() {
        let src = r#"
pub fn f() -> String {
    // x.unwrap() and HashMap in a comment
    /* thread::spawn in a block comment */
    format!("{} {}", "Instant::now()", "thread_rng() from_entropy()")
}
"#;
        let r = audit_source(&lib_ctx(), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
