//! The audit rule set and per-file rule engine.
//!
//! Rules (see DESIGN.md "Determinism invariants & enforcement"):
//!
//! * **DET01** — no `HashMap`/`HashSet` in determinism-critical crates:
//!   their iteration order depends on a randomly seeded hasher, so any
//!   loop over one silently breaks bit-for-bit reproducibility. Use
//!   `BTreeMap`/`BTreeSet`.
//! * **DET02** — no wall-clock or OS-entropy sources (`Instant::now`,
//!   `SystemTime`, `thread_rng`, `from_entropy`) outside `crates/bench`
//!   and `crates/svc`: every random draw must come from a named seeded
//!   nonce stream. Sockets (`UdpSocket`, `TcpListener`, `TcpStream`)
//!   are DET02 hazards too, and for them **only** `crates/svc` is
//!   sanctioned — the service daemon is the one place real network I/O
//!   may exist; even `crates/bench` must drive it through `ices-svc`.
//! * **DET03** — no raw `thread::spawn`/`thread::scope`/`thread::Builder`
//!   outside `crates/par` and `crates/svc`: simulation parallelism goes
//!   through `ices-par`, whose entry points are order-preserving by
//!   construction (the persistent worker pool included — its named
//!   `Builder` spawns live in par). The svc daemon's socket loop and
//!   the loadgen's client workers are real concurrency by design and
//!   never touch simulation state.
//! * **PANIC01** — no `.unwrap()`/`.expect(` in non-test library code
//!   (tests, examples, and binaries are exempt): probe/detector paths
//!   must degrade through `Result`s, not abort a simulation.
//! * **SAFE01** — every crate root carries `#![forbid(unsafe_code)]`.
//!   Sole exception: `crates/par` may carry `#![deny(unsafe_code)]`
//!   instead — its worker pool erases closure lifetimes behind a
//!   completion barrier, and that one audited module opts in with
//!   `#[allow(unsafe_code)]` while the rest of the crate stays denied.
//! * **OBS01** — no wall-clock or entropy source anywhere in
//!   `crates/obs`: observability time flows exclusively through the
//!   `ices_obs::Clock` trait, and the only sanctioned wall-clock impl
//!   lives in `crates/bench` (`WallClock`). Inside `crates/obs` this
//!   rule supersedes DET02 — same triggers, sharper message.
//! * **FAST01** — reassociation-bearing and tier-dispatch calls
//!   (`fast_enabled(`, `with_fast(`, `.chunks_exact(`,
//!   `.chunks_exact_mut(`) are confined to modules named `fast` inside
//!   determinism-critical crates (`crates/par`, which *defines* the
//!   tier knob, is exempt): the exact tier's bit-for-bit contract
//!   survives only if every place that can reorder a float reduction is
//!   findable by module name.
//! * **ALLOW01** — a malformed `audit:allow` (unknown rule or missing
//!   reason). Never suppressible: the reason *is* the audit trail.
//!
//! A finding is suppressed only by an inline
//! `// audit:allow(RULE): reason` comment on the same line or the line
//! above; the mandatory reason feeds the allowlist inventory.

use crate::lexer::{lex, Comment, TokKind, Token};
use crate::tree::{self, Tree};
use serde::Serialize;
use std::collections::BTreeSet;

/// Rule identifiers in report order.
pub const RULE_IDS: [&str; 12] = [
    "DET01", "DET02", "DET03", "PANIC01", "PANIC02", "SAFE01", "OBS01", "OBS02", "STREAM01",
    "FAST01", "ALLOW01", "ALLOW02",
];

/// The parallel entry points whose closures OBS02 polices: everything
/// dispatched through them runs inside the parallel phase, where obs
/// writes are forbidden (DESIGN.md "Observability architecture").
pub const PAR_ENTRY_POINTS: [&str; 4] = ["par_map", "par_map_mut", "par_for_indices", "broadcast"];

/// Obs mutation surface: registry writes plus journal record methods.
/// A call to any of these inside a parallel closure is an OBS02 finding.
pub const OBS_MUTATORS: [&str; 10] = [
    "inc", "add", "set", "observe", "meta", "tick", "phase", "node_event", "pair_event",
    "summary",
];

/// Seeded-stream constructors STREAM01 watches the argument lists of
/// (for 4-char string/byte-string tags; ASCII-hex tag literals are
/// flagged wherever they appear).
pub const STREAM_CTORS: [&str; 6] = [
    "stream_rng", "stream_rng2", "from_stream", "derive", "derive2", "splitmix64",
];

/// Crates whose simulation state must stay bit-for-bit reproducible.
/// (`stats` is the seeded-RNG substrate itself and `bench` is wall-clock
/// territory by design; `adhoc` is the context explicit CLI paths get,
/// which arms every rule.)
pub const DETERMINISM_CRITICAL: [&str; 11] = [
    "coord", "netsim", "vivaldi", "nps", "core", "attack", "sim", "par", "obs", "ices", "adhoc",
];

/// How a file participates in its crate (decides PANIC01 exemptions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every rule applies.
    Lib,
    /// `src/bin/*` or `src/main.rs`: PANIC01 exempt.
    Bin,
}

/// Where a file sits in the workspace, for rule applicability.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path, forward slashes (used in findings).
    pub path: String,
    /// Crate directory name (`core`, `sim`, ...; `ices` for the root
    /// facade crate, `adhoc` for explicit CLI paths).
    pub crate_name: String,
    pub kind: FileKind,
    /// Is this a crate root (`src/lib.rs`), where SAFE01 applies?
    pub is_crate_root: bool,
    /// Is this the stream-tag registry (`crates/stats/src/streams.rs`),
    /// the one file allowed to declare 4-byte tag literals?
    pub is_registry: bool,
}

/// How severe a finding is: errors fail the audit, warnings are
/// advisory (ALLOW02 by default, and baselined findings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the audit (exit 1) unless suppressed.
    Error,
    /// Reported but never fails the audit.
    Warn,
}

impl Severity {
    /// Lowercase wire/report name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

/// One rule violation.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
    /// True when an `audit:allow` covers this finding.
    pub suppressed: bool,
    /// The allow's reason when suppressed (empty otherwise).
    pub reason: String,
    /// Error findings gate the exit code; warnings are advisory.
    pub severity: Severity,
}

/// One `audit:allow(RULE): reason` comment, for the inventory.
#[derive(Debug, Clone, Serialize)]
pub struct AllowEntry {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub reason: String,
    /// Did any finding actually use this suppression?
    pub used: bool,
    /// First line this allow covers (its own first line).
    pub cover_from: u32,
    /// Last line this allow covers (the line after its last line, so
    /// both trailing and standalone comment placements work).
    pub cover_to: u32,
}

/// Everything the engine learned about one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub allows: Vec<AllowEntry>,
    /// Raw material for the cross-crate STREAM01 pass.
    pub streams: StreamFacts,
}

/// One 4-byte stream-tag literal occurrence (outside the registry).
#[derive(Debug, Clone)]
pub struct TagSite {
    /// 1-based line of the literal.
    pub line: u32,
    /// The decoded tag value.
    pub value: u64,
    /// The literal as written (`0x5649_4354`, `"VICT"`, `b"VICT"`).
    pub text: String,
}

/// One `pub const NAME: u64 = 0x...;` declaration in the registry.
#[derive(Debug, Clone)]
pub struct TagDecl {
    /// 1-based line of the declaration.
    pub line: u32,
    /// The constant's name.
    pub name: String,
    /// The declared tag value.
    pub value: u64,
}

/// Per-file raw material for the cross-crate STREAM01 analysis.
#[derive(Debug, Default)]
pub struct StreamFacts {
    /// Tag literals minted in this file (empty for the registry).
    pub sites: Vec<TagSite>,
    /// Registry declarations (empty unless `ctx.is_registry`).
    pub decls: Vec<TagDecl>,
    /// Every identifier spelled in this file — the usage side of the
    /// dead-registry-constant check.
    pub idents: BTreeSet<String>,
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(w)) => Some(w.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Parse the attribute starting at `tokens[i]` (`#` `[` ...): returns
/// (index after the closing `]`, compact rendering like `cfg(test)`).
fn parse_attr(tokens: &[Token], i: usize) -> (usize, String) {
    let mut rendered = String::new();
    let mut j = i + 2; // past '#' '['
    let mut depth = 1usize;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct('[') => {
                depth += 1;
                rendered.push('[');
            }
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, rendered);
                }
                rendered.push(']');
            }
            TokKind::Punct(c) => rendered.push(*c),
            TokKind::Ident(w) => rendered.push_str(w),
            TokKind::Literal(_) => rendered.push('"'),
        }
        j += 1;
    }
    (j, rendered)
}

/// Does this attribute gate its item to test builds? `#[test]`,
/// `#[cfg(test)]`, and any `cfg(...)` mentioning `test` positively
/// (e.g. `cfg(all(test, unix))`) count; `cfg(not(test))` and
/// `cfg_attr(test, ...)` do not.
fn attr_is_test(attr: &str) -> bool {
    if attr == "test" {
        return true;
    }
    attr.starts_with("cfg(") && attr.contains("test") && !attr.contains("not(test")
}

/// Line spans (inclusive) of items gated to test builds: an attribute
/// recognised by [`attr_is_test`] exempts the whole following item —
/// to its closing brace, or to the `;` of a braceless item.
fn test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // `#[...]` (skip inner attributes `#![...]`).
        if punct_at(tokens, i) == Some('#') && punct_at(tokens, i + 1) == Some('[') {
            let start_line = tokens[i].line;
            let (after, attr) = parse_attr(tokens, i);
            if !attr_is_test(&attr) {
                i = after;
                continue;
            }
            // Skip any further attributes on the same item.
            let mut j = after;
            while punct_at(tokens, j) == Some('#') && punct_at(tokens, j + 1) == Some('[') {
                j = parse_attr(tokens, j).0;
            }
            // Consume the item: first `;` before a brace ends it, else
            // the matching `}` of its first brace.
            let mut depth = 0i64;
            let mut end_line = start_line;
            while j < tokens.len() {
                end_line = tokens[j].line;
                match tokens[j].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    TokKind::Punct(';') if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            spans.push((start_line, end_line));
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// Extract `audit:allow(RULE): reason` suppressions from comments.
/// Malformed allows (unknown rule, missing reason) become ALLOW01
/// findings instead of suppressions. Each allow covers its own line(s)
/// and the line after, so both trailing and standalone comments work.
fn parse_allows(ctx: &FileContext, comments: &[Comment]) -> (Vec<AllowEntry>, Vec<Finding>) {
    const MARKER: &str = "audit:allow(";
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for comment in comments {
        // The suppression must be the comment's entire content (leading
        // whitespace aside): `// audit:allow(RULE): reason`. Mentions of
        // the syntax in the middle of prose (like this one) stay inert.
        let rest = comment.text.trim_start();
        if let Some(after) = rest.strip_prefix(MARKER) {
            let Some(close) = after.find(')') else {
                malformed.push(Finding {
                    file: ctx.path.clone(),
                    line: comment.line,
                    rule: "ALLOW01".into(),
                    message: "unterminated audit:allow(...)".into(),
                    suppressed: false,
                    reason: String::new(),
                    severity: Severity::Error,
                });
                continue;
            };
            let rule = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            if !RULE_IDS.contains(&rule.as_str()) || rule == "ALLOW01" {
                malformed.push(Finding {
                    file: ctx.path.clone(),
                    line: comment.line,
                    rule: "ALLOW01".into(),
                    message: format!("audit:allow names unknown rule `{rule}`"),
                    suppressed: false,
                    reason: String::new(),
                    severity: Severity::Error,
                });
                continue;
            }
            // Mandatory `: reason` — the reason is the audit trail.
            let trimmed = tail.trim_start();
            let reason = trimmed
                .strip_prefix(':')
                .map(|r| r.lines().next().unwrap_or("").trim().to_string())
                .unwrap_or_default();
            if reason.is_empty() {
                malformed.push(Finding {
                    file: ctx.path.clone(),
                    line: comment.line,
                    rule: "ALLOW01".into(),
                    message: format!(
                        "audit:allow({rule}) is missing its mandatory `: reason`"
                    ),
                    suppressed: false,
                    reason: String::new(),
                    severity: Severity::Error,
                });
                continue;
            }
            allows.push(AllowEntry {
                file: ctx.path.clone(),
                line: comment.line,
                rule,
                reason,
                used: false,
                cover_from: comment.line,
                cover_to: comment.end_line + 1,
            });
        }
    }
    (allows, malformed)
}


/// Keywords that may directly precede a `[` without making it an index
/// expression (`return [..]`, `else [..]`, `in [..]`, ...).
fn is_expr_keyword(w: &str) -> bool {
    matches!(
        w,
        "return"
            | "break"
            | "continue"
            | "in"
            | "if"
            | "else"
            | "match"
            | "mut"
            | "ref"
            | "move"
            | "as"
            | "let"
            | "const"
            | "static"
            | "dyn"
            | "impl"
            | "where"
            | "loop"
            | "while"
            | "for"
            | "unsafe"
            | "async"
            | "await"
            | "yield"
            | "use"
            | "pub"
            | "fn"
            | "struct"
            | "enum"
            | "type"
            | "trait"
            | "mod"
            | "box"
    )
}

/// Is `text` an integer literal (decimal or hex; underscores and type
/// suffixes welcome)?
fn is_int_literal(text: &str) -> bool {
    text.chars().next().is_some_and(|c| c.is_ascii_digit()) && !text.contains('.')
}

/// PANIC02: find `expr[N]` — a `[...]` group whose only child is an
/// integer literal, directly preceded by an expression (identifier or
/// `(..)`/`[..]` group). Array literals (`= [0]`), attributes
/// (`#[...]`), and slice patterns are shaped differently and stay
/// invisible.
fn panic02_walk(nodes: &[Tree], hits: &mut Vec<(u32, String)>) {
    for i in 0..nodes.len() {
        if let Some(g) = nodes[i].group() {
            if g.delim == '[' && i > 0 {
                let prev = &nodes[i - 1];
                let indexes = prev
                    .ident()
                    .map(|w| !is_expr_keyword(w))
                    .unwrap_or_else(|| {
                        prev.group()
                            .map(|pg| pg.delim == '(' || pg.delim == '[')
                            .unwrap_or(false)
                    });
                if indexes {
                    if let [child] = g.children.as_slice() {
                        if let Some(text) = child.literal() {
                            if is_int_literal(text) {
                                hits.push((g.open_line, text.to_string()));
                            }
                        }
                    }
                }
            }
            panic02_walk(&g.children, hits);
        }
    }
}

/// OBS02 driver: find `par_map(...)` / `broadcast(...)` call groups and
/// scan the closures among their arguments.
fn obs02_walk(nodes: &[Tree], hits: &mut Vec<(u32, &'static str, String)>) {
    for i in 0..nodes.len() {
        if let (Some(name), Some(g)) = (nodes[i].ident(), nodes.get(i + 1).and_then(|n| n.group()))
        {
            if g.delim == '(' {
                if let Some(&entry) = PAR_ENTRY_POINTS.iter().find(|&&e| e == name) {
                    scan_closures(&g.children, entry, hits);
                }
            }
        }
        if let Some(g) = nodes[i].group() {
            obs02_walk(&g.children, hits);
        }
    }
}

/// Within a call's argument children, find closures (a `|` or `move |`
/// at argument-initial position) and scan each closure's body — which
/// extends to the next top-level `,` — for obs mutators.
fn scan_closures(args: &[Tree], entry: &'static str, hits: &mut Vec<(u32, &'static str, String)>) {
    let mut arg_start = true;
    let mut i = 0usize;
    while i < args.len() {
        if args[i].punct() == Some(',') {
            arg_start = true;
            i += 1;
            continue;
        }
        let bar_at = if args[i].punct() == Some('|') {
            Some(i)
        } else if args[i].ident() == Some("move")
            && args.get(i + 1).and_then(|n| n.punct()) == Some('|')
        {
            Some(i + 1)
        } else {
            None
        };
        if let (true, Some(bar)) = (arg_start, bar_at) {
            // Past the parameter list's closing `|`...
            let mut j = bar + 1;
            while j < args.len() && args[j].punct() != Some('|') {
                j += 1;
            }
            j += 1;
            // ...the body runs to the next top-level `,`.
            let body_start = j.min(args.len());
            while j < args.len() && args[j].punct() != Some(',') {
                j += 1;
            }
            scan_mutators(&args[body_start..j], entry, hits);
            i = j;
            arg_start = false;
            continue;
        }
        arg_start = false;
        i += 1;
    }
}

/// Find `.mutator(` method calls anywhere under `nodes`.
fn scan_mutators(nodes: &[Tree], entry: &'static str, hits: &mut Vec<(u32, &'static str, String)>) {
    for i in 0..nodes.len() {
        if nodes[i].punct() == Some('.') {
            if let Some(m) = nodes.get(i + 1).and_then(|n| n.ident()) {
                if OBS_MUTATORS.contains(&m)
                    && nodes
                        .get(i + 2)
                        .and_then(|n| n.group())
                        .map(|g| g.delim == '(')
                        .unwrap_or(false)
                {
                    hits.push((nodes[i + 1].line(), entry, m.to_string()));
                }
            }
        }
        if let Some(g) = nodes[i].group() {
            scan_mutators(&g.children, entry, hits);
        }
    }
}

/// Decode a hex literal as a 4-byte stream tag: exactly 8 hex digits
/// (underscores aside) whose big-endian bytes are all printable ASCII.
fn tag_hex_value(text: &str) -> Option<u64> {
    let rest = text
        .strip_prefix("0x")
        .or_else(|| text.strip_prefix("0X"))?;
    let mut digits = String::new();
    let mut suffix = "";
    for (pos, c) in rest.char_indices() {
        if c.is_ascii_hexdigit() {
            digits.push(c);
        } else if c != '_' {
            suffix = &rest[pos..];
            break;
        }
    }
    if !(suffix.is_empty() || suffix.starts_with('u') || suffix.starts_with('i'))
        || digits.len() != 8
    {
        return None;
    }
    let value = u64::from_str_radix(&digits, 16).ok()?;
    let bytes = (value as u32).to_be_bytes();
    bytes
        .iter()
        .all(|&b| (0x21..=0x7E).contains(&b))
        .then_some(value)
}

/// Decode a 4-char string/byte-string literal (`"VICT"`, `b"VICT"`,
/// raw forms included) as a stream-tag value.
fn str_tag_value(text: &str) -> Option<u64> {
    let mut s = text;
    if let Some(rest) = s.strip_prefix('b') {
        s = rest;
    }
    if let Some(rest) = s.strip_prefix('r') {
        s = rest.trim_start_matches('#');
    }
    let s = s.strip_prefix('"')?;
    let s = s.trim_end_matches('#').strip_suffix('"')?;
    if s.len() != 4 || s.contains('\\') {
        return None;
    }
    let b = s.as_bytes();
    if !b.iter().all(|&x| (0x21..=0x7E).contains(&x)) {
        return None;
    }
    Some(u64::from(u32::from_be_bytes([b[0], b[1], b[2], b[3]])))
}

/// Find 4-char string/byte-string tags inside the argument lists of
/// stream constructors (anywhere else a 4-char string is just a string).
fn str_tags_in_ctor_args(nodes: &[Tree], sites: &mut Vec<TagSite>) {
    for i in 0..nodes.len() {
        if let (Some(name), Some(g)) = (nodes[i].ident(), nodes.get(i + 1).and_then(|n| n.group()))
        {
            if g.delim == '(' && STREAM_CTORS.contains(&name) {
                collect_str_tags(&g.children, sites);
            }
        }
        if let Some(g) = nodes[i].group() {
            str_tags_in_ctor_args(&g.children, sites);
        }
    }
}

fn collect_str_tags(nodes: &[Tree], sites: &mut Vec<TagSite>) {
    for node in nodes {
        if let Some(text) = node.literal() {
            if let Some(value) = str_tag_value(text) {
                sites.push(TagSite {
                    line: node.line(),
                    value,
                    text: text.to_string(),
                });
            }
        }
        if let Some(g) = node.group() {
            collect_str_tags(&g.children, sites);
        }
    }
}

/// Parse a `u64` literal (hex or decimal, underscores/suffix ok).
fn parse_u64_literal(text: &str) -> Option<u64> {
    let (radix, digits) = match text
        .strip_prefix("0x")
        .or_else(|| text.strip_prefix("0X"))
    {
        Some(hex) => (16, hex),
        None => (10, text),
    };
    let cleaned: String = digits
        .chars()
        .take_while(|c| c.is_ascii_hexdigit() || *c == '_')
        .filter(|c| *c != '_')
        .collect();
    u64::from_str_radix(&cleaned, radix).ok()
}

/// Extract `pub const NAME: u64 = <literal>;` declarations — the only
/// form the registry may use, precisely so this extractor and rustc see
/// the same registry.
fn registry_decls(tokens: &[Token]) -> Vec<TagDecl> {
    let mut decls = Vec::new();
    for i in 0..tokens.len() {
        if ident_at(tokens, i) == Some("pub")
            && ident_at(tokens, i + 1) == Some("const")
            && punct_at(tokens, i + 3) == Some(':')
            && ident_at(tokens, i + 4) == Some("u64")
            && punct_at(tokens, i + 5) == Some('=')
            && punct_at(tokens, i + 7) == Some(';')
        {
            let (Some(name), Some(TokKind::Literal(lit))) =
                (ident_at(tokens, i + 2), tokens.get(i + 6).map(|t| &t.kind))
            else {
                continue;
            };
            let Some(value) = parse_u64_literal(lit) else {
                continue;
            };
            decls.push(TagDecl {
                line: tokens[i].line,
                name: name.to_string(),
                value,
            });
        }
    }
    decls
}

/// Audit one file's source under the given context.
pub fn audit_source(ctx: &FileContext, src: &str) -> FileReport {
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let spans = test_spans(tokens);
    let (mut allows, mut findings) = parse_allows(ctx, &lexed.comments);

    let critical = DETERMINISM_CRITICAL.contains(&ctx.crate_name.as_str());
    // `crates/svc` is the sanctioned home for real time, real threads
    // and real sockets (ISSUE 10); `crates/bench` keeps its historical
    // wall-clock license but NOT a socket one — benches drive the
    // daemon through ices-svc rather than opening sockets of their own.
    let det02_applies = !matches!(ctx.crate_name.as_str(), "bench" | "svc");
    let det03_applies = !matches!(ctx.crate_name.as_str(), "par" | "svc");
    let sockets_apply = ctx.crate_name != "svc";
    let panic01_applies = ctx.kind == FileKind::Lib;
    // FAST01: `crates/par` owns the tier knob, and modules *named*
    // `fast` are exactly where reassociated kernels are supposed to
    // live — the rule polices everywhere else in critical crates.
    let fast_module = ctx.path.ends_with("/fast.rs") || ctx.path.contains("/fast/");
    let fast01_applies = critical && ctx.crate_name != "par" && !fast_module;
    // Inside crates/obs the wall-clock rule carries the observability
    // contract's name and message (and supersedes DET02 so one hazard
    // never produces two findings).
    let obs01 = ctx.crate_name == "obs";

    let push = |rule: &str, line: u32, message: String, out: &mut Vec<Finding>| {
        out.push(Finding {
            file: ctx.path.clone(),
            line,
            rule: rule.into(),
            message,
            suppressed: false,
            reason: String::new(),
            severity: Severity::Error,
        });
    };

    // SAFE01: crate roots must forbid unsafe code via the inner
    // attribute `#![forbid(unsafe_code)]`. `crates/par` alone may use
    // `#![deny(unsafe_code)]` — the worker pool's lifetime erasure is
    // the workspace's one sanctioned unsafe block, and deny (unlike
    // forbid) lets exactly that module opt in with `#[allow]` while
    // every other file in the crate stays refused.
    if ctx.is_crate_root {
        let par_deny_ok = ctx.crate_name == "par";
        let mut found = false;
        for i in 0..tokens.len() {
            let level_ok = match ident_at(tokens, i + 3) {
                Some("forbid") => true,
                Some("deny") => par_deny_ok,
                _ => false,
            };
            if punct_at(tokens, i) == Some('#')
                && punct_at(tokens, i + 1) == Some('!')
                && punct_at(tokens, i + 2) == Some('[')
                && level_ok
                && punct_at(tokens, i + 4) == Some('(')
                && ident_at(tokens, i + 5) == Some("unsafe_code")
            {
                found = true;
                break;
            }
        }
        if !found {
            let wanted = if par_deny_ok {
                "crate root is missing `#![forbid(unsafe_code)]` \
                 (or, for `crates/par` only, `#![deny(unsafe_code)]`)"
            } else {
                "crate root is missing `#![forbid(unsafe_code)]`"
            };
            push("SAFE01", 1, wanted.into(), &mut findings);
        }
    }

    for i in 0..tokens.len() {
        let Some(word) = ident_at(tokens, i) else {
            continue;
        };
        let line = tokens[i].line;
        match word {
            "HashMap" | "HashSet" if critical => {
                let alt = if word == "HashMap" { "BTreeMap" } else { "BTreeSet" };
                push(
                    "DET01",
                    line,
                    format!(
                        "`{word}` has seed-dependent iteration order in a \
                         determinism-critical crate; use `{alt}`"
                    ),
                    &mut findings,
                );
            }
            "SystemTime" | "thread_rng" | "from_entropy" if det02_applies => {
                if obs01 {
                    push(
                        "OBS01",
                        line,
                        format!(
                            "`{word}` in ices-obs; observability time must flow \
                             through the `Clock` trait (the bench `WallClock` is \
                             the only sanctioned wall-clock impl)"
                        ),
                        &mut findings,
                    );
                } else {
                    push(
                        "DET02",
                        line,
                        format!(
                            "`{word}` is a wall-clock/entropy source; draw from a \
                             named seeded nonce stream instead"
                        ),
                        &mut findings,
                    );
                }
            }
            "Instant"
                if det02_applies
                    && punct_at(tokens, i + 1) == Some(':')
                    && punct_at(tokens, i + 2) == Some(':')
                    && ident_at(tokens, i + 3) == Some("now") =>
            {
                if obs01 {
                    push(
                        "OBS01",
                        line,
                        "`Instant::now` in ices-obs; observability time must \
                         flow through the `Clock` trait (the bench `WallClock` \
                         is the only sanctioned wall-clock impl)"
                            .into(),
                        &mut findings,
                    );
                } else {
                    push(
                        "DET02",
                        line,
                        "`Instant::now` is a wall-clock source; only `crates/bench` \
                         may time things"
                            .into(),
                        &mut findings,
                    );
                }
            }
            "UdpSocket" | "TcpListener" | "TcpStream" if sockets_apply => {
                if obs01 {
                    push(
                        "OBS01",
                        line,
                        format!(
                            "`{word}` in ices-obs; observability never does \
                             network I/O — sockets live in `crates/svc` only"
                        ),
                        &mut findings,
                    );
                } else {
                    push(
                        "DET02",
                        line,
                        format!(
                            "`{word}` is real network I/O; only `crates/svc` \
                             may open sockets — simulations talk through \
                             `ices-netsim`, benches through `ices-svc`"
                        ),
                        &mut findings,
                    );
                }
            }
            "thread"
                if det03_applies
                    && punct_at(tokens, i + 1) == Some(':')
                    && punct_at(tokens, i + 2) == Some(':')
                    && matches!(
                        ident_at(tokens, i + 3),
                        Some("spawn") | Some("scope") | Some("Builder")
                    ) =>
            {
                let what = ident_at(tokens, i + 3).unwrap_or("spawn");
                push(
                    "DET03",
                    line,
                    format!(
                        "raw `thread::{what}` outside `crates/par`; all \
                         parallelism must go through ices-par's \
                         order-preserving entry points"
                    ),
                    &mut findings,
                );
            }
            "fast_enabled" | "with_fast" | "chunks_exact" | "chunks_exact_mut"
                if fast01_applies
                    && punct_at(tokens, i + 1) == Some('(')
                    && !in_spans(&spans, line) =>
            {
                push(
                    "FAST01",
                    line,
                    format!(
                        "`{word}(` outside a `fast` module; tier dispatch and \
                         chunked (reassociation-prone) reductions belong in a \
                         module named `fast` (or justify with \
                         `// audit:allow(FAST01): reason`)"
                    ),
                    &mut findings,
                );
            }
            "unwrap" | "expect" if panic01_applies => {
                let is_call = punct_at(tokens, i - 1_usize.min(i)) == Some('.')
                    && i > 0
                    && punct_at(tokens, i + 1) == Some('(')
                    && (word == "expect" || punct_at(tokens, i + 2) == Some(')'));
                if is_call && !in_spans(&spans, line) {
                    push(
                        "PANIC01",
                        line,
                        format!(
                            "`.{word}(` in non-test library code; return a typed \
                             error (or justify with `// audit:allow(PANIC01): reason`)"
                        ),
                        &mut findings,
                    );
                }
            }
            _ => {}
        }
    }

    // ---- Dataflow rules: the token-tree layer ----
    let forest = tree::build(tokens);

    // PANIC02 — `expr[N]` with a literal index panics the moment the
    // container is shorter than expected (the `&candidates[0]` class).
    // Same scope as PANIC01: non-test library code of critical crates.
    if critical && panic01_applies {
        let mut hits = Vec::new();
        panic02_walk(&forest, &mut hits);
        for (line, lit) in hits {
            if !in_spans(&spans, line) {
                push(
                    "PANIC02",
                    line,
                    format!(
                        "literal index `[{lit}]` panics if the container is \
                         short; use `.get({lit})`/destructuring (or justify \
                         with `// audit:allow(PANIC02): reason`)"
                    ),
                    &mut findings,
                );
            }
        }
    }

    // OBS02 — obs mutations inside closures passed to parallel entry
    // points: the parallel phase must stay observation-silent, or
    // worker interleaving leaks into journal order.
    {
        let mut hits = Vec::new();
        obs02_walk(&forest, &mut hits);
        for (line, entry, mutator) in hits {
            if !in_spans(&spans, line) {
                push(
                    "OBS02",
                    line,
                    format!(
                        "obs mutation `.{mutator}(` inside a closure passed \
                         to `{entry}`; return per-item results and fold them \
                         into obs after the parallel join"
                    ),
                    &mut findings,
                );
            }
        }
    }

    // STREAM01 (per-file half) — collect the facts the cross-crate
    // pass consumes, and flag bare tag literals outside the registry.
    let mut streams = StreamFacts::default();
    for t in tokens {
        if let TokKind::Ident(w) = &t.kind {
            streams.idents.insert(w.clone());
        }
    }
    if ctx.is_registry {
        streams.decls = registry_decls(tokens);
    } else {
        for t in tokens {
            if let TokKind::Literal(text) = &t.kind {
                if let Some(value) = tag_hex_value(text) {
                    if !in_spans(&spans, t.line) {
                        streams.sites.push(TagSite {
                            line: t.line,
                            value,
                            text: text.clone(),
                        });
                    }
                }
            }
        }
        let mut str_sites = Vec::new();
        str_tags_in_ctor_args(&forest, &mut str_sites);
        streams
            .sites
            .extend(str_sites.into_iter().filter(|s| !in_spans(&spans, s.line)));
        streams.sites.sort_by_key(|a| (a.line, a.text.clone()));
        streams
            .sites
            .dedup_by(|a, b| a.line == b.line && a.text == b.text);
        for site in &streams.sites {
            push(
                "STREAM01",
                site.line,
                format!(
                    "bare 4-byte stream tag `{}`; declare it once in \
                     `crates/stats/src/streams.rs` and reference \
                     `streams::NAME` instead",
                    site.text
                ),
                &mut findings,
            );
        }
    }

    // Apply suppressions. ALLOW01 findings are never suppressible.
    for finding in &mut findings {
        if finding.rule == "ALLOW01" {
            continue;
        }
        for allow in &mut allows {
            if allow.rule == finding.rule
                && (allow.cover_from..=allow.cover_to).contains(&finding.line)
            {
                finding.suppressed = true;
                finding.reason = allow.reason.clone();
                allow.used = true;
                break;
            }
        }
    }

    findings.sort_by_key(|a| (a.line, a.rule.clone()));
    FileReport {
        findings,
        allows,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx() -> FileContext {
        FileContext {
            path: "adhoc/lib.rs".into(),
            crate_name: "adhoc".into(),
            kind: FileKind::Lib,
            is_crate_root: false,
            is_registry: false,
        }
    }

    fn rules_of(report: &FileReport) -> Vec<(&str, u32, bool)> {
        report
            .findings
            .iter()
            .map(|f| (f.rule.as_str(), f.line, f.suppressed))
            .collect()
    }

    #[test]
    fn unwrap_in_lib_is_flagged_with_line() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("PANIC01", 2, false)]);
    }

    #[test]
    fn unwrap_inside_cfg_test_mod_is_exempt() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("PANIC01", 2, false)]);
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 3) }\n";
        let r = audit_source(&lib_ctx(), src);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn allow_on_same_line_suppresses_and_is_inventoried() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // audit:allow(PANIC01): index proven in bounds above\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("PANIC01", 2, true)]);
        assert_eq!(r.allows.len(), 1);
        assert!(r.allows[0].used);
        assert_eq!(r.allows[0].reason, "index proven in bounds above");
    }

    #[test]
    fn allow_on_line_above_suppresses() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    // audit:allow(PANIC01): caller guarantees Some\n    x.unwrap()\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("PANIC01", 3, true)]);
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // audit:allow(PANIC01)\n}\n";
        let r = audit_source(&lib_ctx(), src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"ALLOW01"), "{rules:?}");
        // And the original finding stays unsuppressed.
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == "PANIC01" && !f.suppressed));
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // audit:allow(DET01): wrong rule\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == "PANIC01" && !f.suppressed));
        assert!(!r.allows[0].used);
    }

    #[test]
    fn det01_only_in_critical_crates() {
        let src = "use std::collections::HashMap;\n";
        let mut ctx = lib_ctx();
        let r = audit_source(&ctx, src);
        assert_eq!(rules_of(&r), [("DET01", 1, false)]);
        ctx.crate_name = "stats".into();
        let r = audit_source(&ctx, src);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn det02_exempts_bench() {
        let src = "let t = Instant::now();\nlet r = thread_rng();\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(
            rules_of(&r),
            [("DET02", 1, false), ("DET02", 2, false)]
        );
        let mut bench = lib_ctx();
        bench.crate_name = "bench".into();
        assert!(audit_source(&bench, src).findings.is_empty());
    }

    #[test]
    fn det02_exempts_svc_wallclock_but_not_sim_crates() {
        let src = "let t = Instant::now();\nlet s = SystemTime::now();\n";
        let mut svc = lib_ctx();
        svc.crate_name = "svc".into();
        assert!(audit_source(&svc, src).findings.is_empty());
        assert_eq!(
            rules_of(&audit_source(&lib_ctx(), src)),
            [("DET02", 1, false), ("DET02", 2, false)]
        );
    }

    #[test]
    fn sockets_are_det02_everywhere_but_svc() {
        let src = "let sock = std::net::UdpSocket::bind(addr);\nlet l = TcpListener::bind(addr);\nlet c = TcpStream::connect(addr);\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(
            rules_of(&r),
            [("DET02", 1, false), ("DET02", 2, false), ("DET02", 3, false)]
        );
        assert!(r.findings.iter().all(|f| f.message.contains("crates/svc")));
        // bench keeps its wall-clock license but gets no socket license.
        let mut bench = lib_ctx();
        bench.crate_name = "bench".into();
        assert_eq!(
            rules_of(&audit_source(&bench, src)),
            [("DET02", 1, false), ("DET02", 2, false), ("DET02", 3, false)]
        );
        let mut svc = lib_ctx();
        svc.crate_name = "svc".into();
        assert!(audit_source(&svc, src).findings.is_empty());
    }

    #[test]
    fn sockets_in_obs_report_as_obs01() {
        let src = "let sock = UdpSocket::bind(addr);\n";
        let mut obs = lib_ctx();
        obs.crate_name = "obs".into();
        let r = audit_source(&obs, src);
        assert_eq!(rules_of(&r), [("OBS01", 1, false)]);
        assert!(r.findings.iter().all(|f| f.message.contains("network I/O")));
    }

    #[test]
    fn det03_exempts_par() {
        let src = "std::thread::scope(|s| { s.spawn(|| {}); });\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("DET03", 1, false)]);
        let mut par = lib_ctx();
        par.crate_name = "par".into();
        assert!(audit_source(&par, src).findings.is_empty());
    }

    #[test]
    fn det03_exempts_svc() {
        let src = "std::thread::spawn(|| {});\nthread::Builder::new();\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("DET03", 1, false), ("DET03", 2, false)]);
        let mut svc = lib_ctx();
        svc.crate_name = "svc".into();
        assert!(audit_source(&svc, src).findings.is_empty());
    }

    #[test]
    fn fast01_flags_tier_calls_outside_fast_modules() {
        let src = "pub fn f(v: &[f64]) -> bool {\n    let _ = v.chunks_exact(4);\n    ices_par::fast_enabled()\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("FAST01", 2, false), ("FAST01", 3, false)]);
    }

    #[test]
    fn fast01_exempts_fast_modules_par_and_noncritical_crates() {
        let src =
            "pub fn f(v: &mut [f64]) { for c in v.chunks_exact_mut(4) { c.reverse(); } }\n";
        let mut ctx = lib_ctx();
        ctx.path = "crates/nps/src/fast.rs".into();
        ctx.crate_name = "nps".into();
        assert!(audit_source(&ctx, src).findings.is_empty());
        ctx.path = "crates/core/src/batch/fast/kernel.rs".into();
        ctx.crate_name = "core".into();
        assert!(audit_source(&ctx, src).findings.is_empty());
        let mut par = lib_ctx();
        par.crate_name = "par".into();
        assert!(audit_source(&par, "pub fn g() -> bool { fast_enabled() }\n")
            .findings
            .is_empty());
        let mut stats = lib_ctx();
        stats.crate_name = "stats".into();
        assert!(audit_source(&stats, src).findings.is_empty());
    }

    #[test]
    fn fast01_exempts_tests_and_honors_allows() {
        let test_src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { ices_par::with_fast(true, || {}); }\n}\n";
        assert!(audit_source(&lib_ctx(), test_src).findings.is_empty());
        let allowed = "pub fn f(v: &[f64]) -> f64 {\n    // audit:allow(FAST01): lane-independent sweep, no reduction reordered\n    v.chunks_exact(4).map(|c| c.iter().sum::<f64>()).sum()\n}\n";
        let r = audit_source(&lib_ctx(), allowed);
        assert_eq!(rules_of(&r), [("FAST01", 3, true)]);
        assert!(r.allows[0].used);
    }

    #[test]
    fn fast01_requires_a_call_site() {
        // Mentions in docs/strings/idents-without-parens don't fire.
        let src = "pub fn chunks_exact_reporter() { let fast_enabled = 1; let _ = fast_enabled; }\n";
        assert!(audit_source(&lib_ctx(), src).findings.is_empty());
    }

    #[test]
    fn obs_crate_reports_wallclock_as_obs01_not_det02() {
        let src = "let t = Instant::now();\nlet s = SystemTime::now();\n";
        let mut obs = lib_ctx();
        obs.crate_name = "obs".into();
        let r = audit_source(&obs, src);
        assert_eq!(rules_of(&r), [("OBS01", 1, false), ("OBS01", 2, false)]);
        assert!(r.findings.iter().all(|f| f.message.contains("Clock")));
        // Elsewhere the same triggers stay DET02 — no double reporting.
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("DET02", 1, false), ("DET02", 2, false)]);
    }

    #[test]
    fn obs_crate_is_determinism_critical() {
        let src = "use std::collections::HashMap;\n";
        let mut obs = lib_ctx();
        obs.crate_name = "obs".into();
        assert_eq!(rules_of(&audit_source(&obs, src)), [("DET01", 1, false)]);
    }

    #[test]
    fn safe01_checks_crate_roots_only() {
        let src = "pub fn f() {}\n";
        let mut ctx = lib_ctx();
        assert!(audit_source(&ctx, src).findings.is_empty());
        ctx.is_crate_root = true;
        assert_eq!(rules_of(&audit_source(&ctx, src)), [("SAFE01", 1, false)]);
        let good = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(audit_source(&ctx, good).findings.is_empty());
    }

    #[test]
    fn safe01_accepts_deny_for_par_crate_root_only() {
        let deny = "#![deny(unsafe_code)]\npub fn f() {}\n";
        let mut par = lib_ctx();
        par.crate_name = "par".into();
        par.is_crate_root = true;
        assert!(
            audit_source(&par, deny).findings.is_empty(),
            "par may deny instead of forbid"
        );
        // Everyone else must still forbid — deny is not enough.
        let mut other = lib_ctx();
        other.is_crate_root = true;
        assert_eq!(rules_of(&audit_source(&other, deny)), [("SAFE01", 1, false)]);
        // And par with neither attribute is still flagged.
        let bare = "pub fn f() {}\n";
        assert_eq!(rules_of(&audit_source(&par, bare)), [("SAFE01", 1, false)]);
    }

    #[test]
    fn det03_flags_thread_builder_outside_par() {
        let src = "let h = std::thread::Builder::new().spawn(|| {});\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("DET03", 1, false)]);
        assert!(r.findings[0].message.contains("thread::Builder"));
        let mut par = lib_ctx();
        par.crate_name = "par".into();
        assert!(audit_source(&par, src).findings.is_empty());
    }

    #[test]
    fn bins_are_panic01_exempt_but_not_det_exempt() {
        let src = "fn main() { Some(1).unwrap(); let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let mut ctx = lib_ctx();
        ctx.kind = FileKind::Bin;
        let report = audit_source(&ctx, src);
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, ["DET01", "DET01"]);
    }

    #[test]
    fn panic02_flags_literal_indexing_with_line() {
        let src = "pub fn f(v: &[f64]) -> f64 {\n    v[0]\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("PANIC02", 2, false)]);
    }

    #[test]
    fn panic02_ignores_array_literals_macros_and_variable_indices() {
        let src = "pub fn f(v: &[f64], i: usize) -> f64 {\n    let _a = [0.0; 4];\n    let _b = vec![0];\n    let _c: [u8; 2] = [1, 2];\n    v[i]\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn panic02_exempts_test_code_and_honors_allows() {
        let test_src = "#[cfg(test)]\nmod tests {\n    fn g(v: &[u8]) -> u8 { v[0] }\n}\n";
        assert!(audit_source(&lib_ctx(), test_src).findings.is_empty());
        let allowed = "pub fn f(v: &[f64]) -> f64 {\n    v[0] // audit:allow(PANIC02): caller guarantees non-empty\n}\n";
        let r = audit_source(&lib_ctx(), allowed);
        assert_eq!(rules_of(&r), [("PANIC02", 2, true)]);
    }

    #[test]
    fn panic02_flags_indexing_after_call_and_nested_index() {
        let src = "pub fn f(v: &[Vec<f64>]) -> f64 {\n    v.to_vec()[0][1]\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(
            rules_of(&r),
            [("PANIC02", 2, false), ("PANIC02", 2, false)]
        );
    }

    #[test]
    fn obs02_flags_obs_mutation_inside_par_closure() {
        let src = "pub fn f(reg: &Registry, xs: &[u8]) {\n    par_map(xs, |x| {\n        reg.inc(\"k\", 1);\n        x + 1\n    });\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("OBS02", 3, false)]);
        assert!(r.findings[0].message.contains("par_map"));
    }

    #[test]
    fn obs02_move_closures_and_broadcast_are_covered() {
        let src = "pub fn f(j: &Journal, pool: &Pool) {\n    pool.broadcast(move |w| {\n        j.node_event(w, 0);\n    });\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("OBS02", 3, false)]);
    }

    #[test]
    fn obs02_ignores_mutations_outside_the_closure() {
        let src = "pub fn f(reg: &Registry, xs: &[u8]) {\n    reg.inc(\"before\", 1);\n    par_map(xs, |x| x + 1);\n    reg.observe(\"after\", 2.0);\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn obs02_non_closure_arguments_are_not_closure_bodies() {
        // The mutation happens *before* the parallel phase, while the
        // argument is evaluated — only closure bodies are policed.
        let src = "pub fn f(reg: &Registry, xs: &[u8]) {\n    par_map(reg.snapshot(), |x| x + 1);\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn stream01_flags_bare_hex_tags_and_ctor_strings() {
        let src = "pub fn f(seed: u64) {\n    let _a = stream_rng(seed, 0x5649_4354, 0);\n    let _b = SimRng::from_stream(seed, \"VICT\", 1);\n}\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(
            rules_of(&r),
            [("STREAM01", 2, false), ("STREAM01", 3, false)]
        );
        let values: Vec<u64> = r.streams.sites.iter().map(|s| s.value).collect();
        assert_eq!(values, [0x5649_4354, 0x5649_4354]);
    }

    #[test]
    fn stream01_hex_tags_are_flagged_even_outside_ctors() {
        let src = "pub const MY_STREAM: u64 = 0x4641_4C54;\n";
        let r = audit_source(&lib_ctx(), src);
        assert_eq!(rules_of(&r), [("STREAM01", 1, false)]);
    }

    #[test]
    fn stream01_ignores_non_tag_hex_and_strings_outside_ctors() {
        // Masks with non-printable bytes, wide tags, and 4-char strings
        // that never reach a stream constructor are all fine.
        let src = "pub const MASK: u64 = 0xFFFF_FFFF;\npub const GOLD: u64 = 0x9E37_79B9;\npub const WIDE: u64 = 0x6B6D_6561_6E73;\npub const NAME: &str = \"VICT\";\n";
        let r = audit_source(&lib_ctx(), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn registry_file_declarations_are_extracted_not_flagged() {
        let mut ctx = lib_ctx();
        ctx.is_registry = true;
        let src = "pub const VICT: u64 = 0x5649_4354;\npub const NPSV: u64 = 0x4E50_5356;\n";
        let r = audit_source(&ctx, src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        let decls: Vec<(&str, u64, u32)> = r
            .streams
            .decls
            .iter()
            .map(|d| (d.name.as_str(), d.value, d.line))
            .collect();
        assert_eq!(
            decls,
            [("VICT", 0x5649_4354, 1), ("NPSV", 0x4E50_5356, 2)]
        );
    }

    #[test]
    fn triggers_inside_literals_and_comments_are_invisible() {
        let src = r#"
pub fn f() -> String {
    // x.unwrap() and HashMap in a comment
    /* thread::spawn in a block comment */
    format!("{} {}", "Instant::now()", "thread_rng() from_entropy()")
}
"#;
        let r = audit_source(&lib_ctx(), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
