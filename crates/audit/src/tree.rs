//! Token trees: the brace-aware layer between the lexer and the rules.
//!
//! The flat token stream is enough for "ban this identifier" rules, but
//! the dataflow rules need structure: OBS02 must know whether a call
//! sits *inside a closure passed to a parallel entry point*, PANIC02
//! must distinguish `x[0]` (indexing) from `[0]` (an array literal) and
//! `#[cfg(...)]` (an attribute), and STREAM01 must see which literals
//! flow into a stream constructor's argument list. This module nests
//! the flat stream into groups at every `()`/`[]`/`{}` pair, tolerating
//! malformed input (a stray closer becomes a leaf; EOF closes every
//! open group) so the analysis degrades instead of failing.

use crate::lexer::{TokKind, Token};

/// One node of the token tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Token),
    /// A delimited group and everything inside it.
    Group(Group),
}

/// A `(...)`, `[...]`, or `{...}` group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// The opening delimiter: `(`, `[`, or `{`.
    pub delim: char,
    /// 1-based line of the opening delimiter.
    pub open_line: u32,
    /// 1-based line of the closing delimiter (last seen line if the
    /// group was closed by EOF).
    pub close_line: u32,
    /// The group's children, in source order.
    pub children: Vec<Tree>,
}

impl Tree {
    /// The identifier text if this is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(Token {
                kind: TokKind::Ident(w),
                ..
            }) => Some(w.as_str()),
            _ => None,
        }
    }

    /// The punctuation char if this is a punctuation leaf.
    pub fn punct(&self) -> Option<char> {
        match self {
            Tree::Leaf(Token {
                kind: TokKind::Punct(c),
                ..
            }) => Some(*c),
            _ => None,
        }
    }

    /// The raw literal text if this is a literal leaf.
    pub fn literal(&self) -> Option<&str> {
        match self {
            Tree::Leaf(Token {
                kind: TokKind::Literal(text),
                ..
            }) => Some(text.as_str()),
            _ => None,
        }
    }

    /// The group if this is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Group(g) => Some(g),
            _ => None,
        }
    }

    /// The 1-based line this node starts on.
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group(g) => g.open_line,
        }
    }
}

fn closer(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Nest a flat token stream into token trees.
pub fn build(tokens: &[Token]) -> Vec<Tree> {
    let mut i = 0usize;
    build_level(tokens, &mut i, None)
}

fn build_level(tokens: &[Token], i: &mut usize, until: Option<char>) -> Vec<Tree> {
    let mut out = Vec::new();
    while *i < tokens.len() {
        let tok = &tokens[*i];
        match &tok.kind {
            TokKind::Punct(c @ ('(' | '[' | '{')) => {
                let open = *c;
                let open_line = tok.line;
                *i += 1;
                let children = build_level(tokens, i, Some(closer(open)));
                // `build_level` stops either on the matching closer
                // (consume it) or at EOF.
                let close_line = if *i < tokens.len() {
                    let line = tokens[*i].line;
                    *i += 1;
                    line
                } else {
                    tokens.last().map(|t| t.line).unwrap_or(open_line)
                };
                out.push(Tree::Group(Group {
                    delim: open,
                    open_line,
                    close_line,
                    children,
                }));
            }
            TokKind::Punct(c @ (')' | ']' | '}')) => {
                if Some(*c) == until {
                    return out; // caller consumes the closer
                }
                // A closer that matches no opener: tolerate as a leaf.
                out.push(Tree::Leaf(tok.clone()));
                *i += 1;
            }
            _ => {
                out.push(Tree::Leaf(tok.clone()));
                *i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn trees(src: &str) -> Vec<Tree> {
        build(&lex(src).tokens)
    }

    #[test]
    fn nests_groups() {
        let t = trees("f(a, [1, 2], { g(b) })");
        // f + one paren group at top level.
        assert_eq!(t.len(), 2);
        let call = t[1].group().unwrap_or_else(|| panic!("group"));
        assert_eq!(call.delim, '(');
        let brackets: Vec<char> = call
            .children
            .iter()
            .filter_map(|c| c.group().map(|g| g.delim))
            .collect();
        assert_eq!(brackets, ['[', '{']);
    }

    #[test]
    fn group_lines_span_the_source() {
        let t = trees("f(\n  x,\n  y,\n)");
        let call = t[1].group().unwrap_or_else(|| panic!("group"));
        assert_eq!(call.open_line, 1);
        assert_eq!(call.close_line, 4);
    }

    #[test]
    fn unbalanced_input_degrades() {
        // Stray closer: kept as a leaf; unclosed group: closed at EOF.
        let t = trees(") f(x");
        assert_eq!(t[0].punct(), Some(')'));
        assert!(t[2].group().is_some());
    }

    #[test]
    fn literals_survive_with_text() {
        let t = trees(r#"g("VICT", 0x4641_4C54)"#);
        let call = t[1].group().unwrap_or_else(|| panic!("group"));
        let lits: Vec<&str> = call.children.iter().filter_map(|c| c.literal()).collect();
        assert_eq!(lits, ["\"VICT\"", "0x4641_4C54"]);
    }
}
