#![forbid(unsafe_code)]
//! `ices-audit`: workspace determinism & panic-hygiene static analysis.
//!
//! The workspace's load-bearing guarantee — bit-for-bit identical
//! simulation results at any `ICES_THREADS` and under any `FaultPlan` —
//! rests on invariants no compiler checks: every random draw comes from
//! a named seeded nonce stream, no iteration over randomly seeded hash
//! containers, all parallelism through `ices-par`, no panics in library
//! probe/detector paths. This crate makes those invariants machine
//! enforced: a hand-rolled lexer (`lexer`) that cannot be fooled by
//! comments or string literals feeds a per-file rule engine (`rules`)
//! over every `crates/*/src` file plus the root facade, and tier-1
//! (`tests/audit_clean.rs`) fails the moment a hazard is reintroduced.
//!
//! Run it as `cargo run -p ices-audit -- --workspace [--json]`, or hand
//! it explicit files/directories (audited under the strictest context,
//! with every rule armed — this is what the fixture tests do).

pub mod lexer;
pub mod rules;

use rules::{audit_source, AllowEntry, FileContext, FileKind, Finding};
use serde::Serialize;
use std::fs;
use std::path::{Path, PathBuf};

/// Aggregate result over every audited file.
#[derive(Debug, Default, Serialize)]
pub struct Report {
    pub files_audited: usize,
    pub findings: Vec<Finding>,
    pub allows: Vec<AllowEntry>,
}

impl Report {
    /// Findings not covered by an `audit:allow`.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Should the process exit nonzero?
    pub fn is_dirty(&self) -> bool {
        self.unsuppressed().next().is_some()
    }

    /// Human-readable rendering (the non-`--json` output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self.unsuppressed() {
            out.push_str(&format!(
                "{}:{}: {}: {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        let suppressed = self.findings.iter().filter(|f| f.suppressed).count();
        if !self.allows.is_empty() {
            out.push_str(&format!(
                "\nallowlist inventory ({} entr{}):\n",
                self.allows.len(),
                if self.allows.len() == 1 { "y" } else { "ies" }
            ));
            for a in &self.allows {
                let tag = if a.used { "" } else { " [unused]" };
                out.push_str(&format!(
                    "  {}:{}: {} — {}{}\n",
                    a.file, a.line, a.rule, a.reason, tag
                ));
            }
        }
        let dirty = self.unsuppressed().count();
        out.push_str(&format!(
            "\naudit: {} files, {} finding{} ({} suppressed), {} allow{}\n",
            self.files_audited,
            dirty,
            if dirty == 1 { "" } else { "s" },
            suppressed,
            self.allows.len(),
            if self.allows.len() == 1 { "" } else { "s" },
        ));
        out
    }
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collect `.rs` files under `dir` recursively, sorted for stable
/// output ordering.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
}

fn to_rel_string(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Build the [`FileContext`] for a source file inside crate `crate_name`
/// whose path relative to the crate's `src/` directory is `rel_in_src`.
fn crate_file_context(root: &Path, path: &Path, crate_name: &str, src_dir: &Path) -> FileContext {
    let in_src = path.strip_prefix(src_dir).unwrap_or(path);
    let in_src_str = in_src.to_string_lossy().replace('\\', "/");
    let kind = if in_src_str.starts_with("bin/") || in_src_str == "main.rs" {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    FileContext {
        path: to_rel_string(root, path),
        crate_name: crate_name.to_string(),
        kind,
        is_crate_root: in_src_str == "lib.rs",
    }
}

/// Every (path, context) pair of a `--workspace` run: all of
/// `crates/*/src` plus the root facade crate's `src/`.
pub fn workspace_targets(root: &Path) -> Vec<(PathBuf, FileContext)> {
    let mut targets = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src_dir = crate_dir.join("src");
        let mut files = Vec::new();
        collect_rs(&src_dir, &mut files);
        for file in files {
            targets.push((
                file.clone(),
                crate_file_context(root, &file, &crate_name, &src_dir),
            ));
        }
    }
    // The root facade crate.
    let root_src = root.join("src");
    let mut files = Vec::new();
    collect_rs(&root_src, &mut files);
    for file in files {
        targets.push((
            file.clone(),
            crate_file_context(root, &file, "ices", &root_src),
        ));
    }
    targets
}

/// Contexts for explicit CLI paths: the strictest interpretation —
/// crate `adhoc` (all determinism rules armed), library kind, crate
/// root iff the file is named `lib.rs`. Directories recurse.
pub fn adhoc_targets(paths: &[PathBuf]) -> Vec<(PathBuf, FileContext)> {
    adhoc_targets_as(paths, "adhoc")
}

/// [`adhoc_targets`] under a chosen crate context (`--context NAME`):
/// lets explicit paths be audited with the rule set of a specific crate
/// — e.g. `--context obs` arms OBS01, `--context bench` relaxes DET02 —
/// which is how the fixture tests pin per-crate behavior.
pub fn adhoc_targets_as(paths: &[PathBuf], crate_name: &str) -> Vec<(PathBuf, FileContext)> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            collect_rs(path, &mut files);
        } else {
            files.push(path.clone());
        }
    }
    files
        .into_iter()
        .map(|file| {
            let is_root = file
                .file_name()
                .map(|n| n == "lib.rs")
                .unwrap_or(false);
            let ctx = FileContext {
                path: file.to_string_lossy().replace('\\', "/"),
                crate_name: crate_name.to_string(),
                kind: FileKind::Lib,
                is_crate_root: is_root,
            };
            (file, ctx)
        })
        .collect()
}

/// Audit the given (path, context) targets, reading each file once.
/// Unreadable files surface as findings rather than aborting the run.
pub fn audit_targets(targets: &[(PathBuf, FileContext)]) -> Report {
    let mut report = Report::default();
    for (path, ctx) in targets {
        match fs::read_to_string(path) {
            Ok(src) => {
                let file_report = audit_source(ctx, &src);
                report.findings.extend(file_report.findings);
                report.allows.extend(file_report.allows);
                report.files_audited += 1;
            }
            Err(err) => {
                report.findings.push(Finding {
                    file: ctx.path.clone(),
                    line: 0,
                    rule: "IO".into(),
                    message: format!("cannot read file: {err}"),
                    suppressed: false,
                    reason: String::new(),
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here);
        assert!(root.is_some());
        let root = root.unwrap_or_default();
        assert!(root.join("crates").is_dir(), "{}", root.display());
    }

    #[test]
    fn workspace_targets_cover_every_crate() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here).unwrap_or_default();
        let targets = workspace_targets(&root);
        let mut crates: Vec<&str> = targets
            .iter()
            .map(|(_, c)| c.crate_name.as_str())
            .collect();
        crates.dedup();
        for expected in ["audit", "coord", "core", "par", "sim", "ices"] {
            assert!(crates.contains(&expected), "missing {expected}: {crates:?}");
        }
        // Crate roots are detected.
        assert!(targets
            .iter()
            .any(|(_, c)| c.crate_name == "par" && c.is_crate_root));
    }

    #[test]
    fn bin_files_are_classified() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here).unwrap_or_default();
        let targets = workspace_targets(&root);
        let bench_bin = targets
            .iter()
            .find(|(p, _)| p.to_string_lossy().contains("bench/src/bin"));
        if let Some((_, ctx)) = bench_bin {
            assert_eq!(ctx.kind, FileKind::Bin);
        }
        let audit_main = targets
            .iter()
            .find(|(p, _)| p.to_string_lossy().ends_with("audit/src/main.rs"));
        assert!(matches!(audit_main, Some((_, c)) if c.kind == FileKind::Bin));
    }

    #[test]
    fn report_renders_and_serializes() {
        let report = Report {
            files_audited: 1,
            findings: vec![Finding {
                file: "x.rs".into(),
                line: 3,
                rule: "PANIC01".into(),
                message: "boom".into(),
                suppressed: false,
                reason: String::new(),
            }],
            allows: vec![],
        };
        let text = report.render_text();
        assert!(text.contains("x.rs:3: PANIC01"));
        assert!(report.is_dirty());
        let json = serde_json::to_string(&report).unwrap_or_default();
        assert!(json.contains("\"rule\""), "{json}");
    }
}
