#![forbid(unsafe_code)]
//! `ices-audit`: workspace determinism & panic-hygiene static analysis.
//!
//! The workspace's load-bearing guarantee — bit-for-bit identical
//! simulation results at any `ICES_THREADS` and under any `FaultPlan` —
//! rests on invariants no compiler checks: every random draw comes from
//! a named seeded nonce stream, no iteration over randomly seeded hash
//! containers, all parallelism through `ices-par`, no panics in library
//! probe/detector paths. This crate makes those invariants machine
//! enforced: a hand-rolled lexer (`lexer`) that cannot be fooled by
//! comments or string literals feeds a token-tree builder (`tree`) and a
//! per-file rule engine (`rules`) over every `crates/*/src` file plus
//! the root facade; a cross-crate pass then joins the per-file stream
//! facts into the STREAM01 registry analysis (duplicate tags, bare tag
//! literals, dead registry constants). Tier-1 (`tests/audit_clean.rs`)
//! fails the moment a hazard is reintroduced.
//!
//! Run it as `cargo run -p ices-audit -- --workspace [--json]`, or hand
//! it explicit files/directories (audited under the strictest context,
//! with every rule armed — this is what the fixture tests do).

pub mod lexer;
pub mod rules;
pub mod tree;

use rules::{audit_source, AllowEntry, FileContext, FileKind, Finding, Severity, TagDecl};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// The one file allowed to declare 4-byte stream tags (STREAM01).
pub const REGISTRY_PATH: &str = "crates/stats/src/streams.rs";

/// Knobs for an audit run.
#[derive(Debug, Default, Clone)]
pub struct AuditOptions {
    /// Promote ALLOW02 (an `audit:allow` that suppresses nothing) from
    /// warning to error — `scripts/audit.sh --strict-allows`.
    pub strict_allows: bool,
}

/// Aggregate result over every audited file.
#[derive(Debug, Default, Serialize)]
pub struct Report {
    pub files_audited: usize,
    pub findings: Vec<Finding>,
    pub allows: Vec<AllowEntry>,
}

impl Report {
    /// Findings not covered by an `audit:allow`.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Unsuppressed findings that gate the exit code.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.unsuppressed()
            .filter(|f| f.severity == Severity::Error)
    }

    /// Should the process exit nonzero?
    pub fn is_dirty(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Human-readable rendering (the non-`--json` output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self.unsuppressed() {
            let tag = match f.severity {
                Severity::Error => "",
                Severity::Warn => " [warn]",
            };
            out.push_str(&format!(
                "{}:{}: {}{}: {}\n",
                f.file, f.line, f.rule, tag, f.message
            ));
        }
        let suppressed = self.findings.iter().filter(|f| f.suppressed).count();
        if !self.allows.is_empty() {
            out.push_str(&format!(
                "\nallowlist inventory ({} entr{}):\n",
                self.allows.len(),
                if self.allows.len() == 1 { "y" } else { "ies" }
            ));
            for a in &self.allows {
                let tag = if a.used { "" } else { " [unused]" };
                out.push_str(&format!(
                    "  {}:{}: {} — {}{}\n",
                    a.file, a.line, a.rule, a.reason, tag
                ));
            }
        }
        let errors = self.errors().count();
        let warns = self.unsuppressed().count() - errors;
        out.push_str(&format!(
            "\naudit: {} files, {} error{} ({} suppressed, {} warning{}), {} allow{}\n",
            self.files_audited,
            errors,
            if errors == 1 { "" } else { "s" },
            suppressed,
            warns,
            if warns == 1 { "" } else { "s" },
            self.allows.len(),
            if self.allows.len() == 1 { "" } else { "s" },
        ));
        out
    }
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collect `.rs` files under `dir` recursively, sorted for stable
/// output ordering.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
}

fn to_rel_string(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Build the [`FileContext`] for a source file inside crate `crate_name`
/// whose path relative to the crate's `src/` directory is `rel_in_src`.
fn crate_file_context(root: &Path, path: &Path, crate_name: &str, src_dir: &Path) -> FileContext {
    let in_src = path.strip_prefix(src_dir).unwrap_or(path);
    let in_src_str = in_src.to_string_lossy().replace('\\', "/");
    let kind = if in_src_str.starts_with("bin/") || in_src_str == "main.rs" {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    let rel = to_rel_string(root, path);
    let is_registry = rel == REGISTRY_PATH;
    FileContext {
        path: rel,
        crate_name: crate_name.to_string(),
        kind,
        is_crate_root: in_src_str == "lib.rs",
        is_registry,
    }
}

/// Every (path, context) pair of a `--workspace` run: all of
/// `crates/*/src` plus the root facade crate's `src/`.
pub fn workspace_targets(root: &Path) -> Vec<(PathBuf, FileContext)> {
    let mut targets = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src_dir = crate_dir.join("src");
        let mut files = Vec::new();
        collect_rs(&src_dir, &mut files);
        for file in files {
            targets.push((
                file.clone(),
                crate_file_context(root, &file, &crate_name, &src_dir),
            ));
        }
    }
    // The root facade crate.
    let root_src = root.join("src");
    let mut files = Vec::new();
    collect_rs(&root_src, &mut files);
    for file in files {
        targets.push((
            file.clone(),
            crate_file_context(root, &file, "ices", &root_src),
        ));
    }
    targets
}

/// Contexts for explicit CLI paths: the strictest interpretation —
/// crate `adhoc` (all determinism rules armed), library kind, crate
/// root iff the file is named `lib.rs`, registry iff it is named
/// `streams.rs` (so registry fixtures exercise the decl extractor).
/// Directories recurse.
pub fn adhoc_targets(paths: &[PathBuf]) -> Vec<(PathBuf, FileContext)> {
    adhoc_targets_as(paths, "adhoc")
}

/// [`adhoc_targets`] under a chosen crate context (`--context NAME`):
/// lets explicit paths be audited with the rule set of a specific crate
/// — e.g. `--context obs` arms OBS01, `--context bench` relaxes DET02 —
/// which is how the fixture tests pin per-crate behavior.
pub fn adhoc_targets_as(paths: &[PathBuf], crate_name: &str) -> Vec<(PathBuf, FileContext)> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            collect_rs(path, &mut files);
        } else {
            files.push(path.clone());
        }
    }
    files
        .into_iter()
        .map(|file| {
            let name = file.file_name().map(|n| n.to_string_lossy().into_owned());
            let is_root = name.as_deref() == Some("lib.rs");
            let is_registry = name.as_deref() == Some("streams.rs");
            let ctx = FileContext {
                path: file.to_string_lossy().replace('\\', "/"),
                crate_name: crate_name.to_string(),
                kind: FileKind::Lib,
                is_crate_root: is_root,
                is_registry,
            };
            (file, ctx)
        })
        .collect()
}

/// Audit the given (path, context) targets with default options.
pub fn audit_targets(targets: &[(PathBuf, FileContext)]) -> Report {
    audit_targets_with(targets, &AuditOptions::default())
}

/// Audit the given (path, context) targets, reading each file once,
/// then run the cross-crate passes:
///
/// * **STREAM01** joins every file's stream facts against the registry:
///   duplicate tag values or names inside the registry, and registered
///   constants no other file ever names (dead streams), all fail the
///   audit. Bare-literal findings (produced per-file) get a `streams::`
///   name hint here when the value is already registered.
/// * **ALLOW02** turns each `audit:allow` that suppressed nothing into
///   a finding — warning by default, error under
///   [`AuditOptions::strict_allows`].
///
/// Unreadable files surface as findings rather than aborting the run.
pub fn audit_targets_with(targets: &[(PathBuf, FileContext)], opts: &AuditOptions) -> Report {
    let mut report = Report::default();
    // (registry file, decl) — in practice one registry, but the pass
    // tolerates several (each fixture dir is its own little workspace).
    let mut decls: Vec<(String, TagDecl)> = Vec::new();
    // Identifiers spelled outside the registry: the usage side of the
    // dead-constant check (the registry names its own constants, which
    // must not count as use).
    let mut outside_idents: BTreeSet<String> = BTreeSet::new();
    // (file, line) -> tag value for bare-literal name hints.
    let mut site_values: BTreeMap<(String, u32), u64> = BTreeMap::new();

    for (path, ctx) in targets {
        match fs::read_to_string(path) {
            Ok(src) => {
                let file_report = audit_source(ctx, &src);
                for d in &file_report.streams.decls {
                    decls.push((ctx.path.clone(), d.clone()));
                }
                if !ctx.is_registry {
                    outside_idents.extend(file_report.streams.idents.iter().cloned());
                }
                for s in &file_report.streams.sites {
                    site_values.insert((ctx.path.clone(), s.line), s.value);
                }
                report.findings.extend(file_report.findings);
                report.allows.extend(file_report.allows);
                report.files_audited += 1;
            }
            Err(err) => {
                report.findings.push(Finding {
                    file: ctx.path.clone(),
                    line: 0,
                    rule: "IO".into(),
                    message: format!("cannot read file: {err}"),
                    suppressed: false,
                    reason: String::new(),
                    severity: Severity::Error,
                });
            }
        }
    }

    // ---- Cross-crate STREAM01: the registry table ----
    let mut by_value: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, (_, d)) in decls.iter().enumerate() {
        by_value.entry(d.value).or_default().push(i);
        by_name.entry(d.name.as_str()).or_default().push(i);
    }
    for dup in by_value.values().filter(|v| v.len() > 1) {
        for &i in dup {
            let (file, d) = &decls[i];
            let others: Vec<String> = dup
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| format!("`{}` (line {})", decls[j].1.name, decls[j].1.line))
                .collect();
            report.findings.push(Finding {
                file: file.clone(),
                line: d.line,
                rule: "STREAM01".into(),
                message: format!(
                    "stream tag 0x{:08X} (`{}`) is also registered as {} — \
                     colliding tags silently correlate independent streams",
                    d.value,
                    d.name,
                    others.join(", ")
                ),
                suppressed: false,
                reason: String::new(),
                severity: Severity::Error,
            });
        }
    }
    for dup in by_name.values().filter(|v| v.len() > 1) {
        for &i in dup {
            let (file, d) = &decls[i];
            report.findings.push(Finding {
                file: file.clone(),
                line: d.line,
                rule: "STREAM01".into(),
                message: format!(
                    "stream tag name `{}` is declared {} times in the registry",
                    d.name,
                    dup.len()
                ),
                suppressed: false,
                reason: String::new(),
                severity: Severity::Error,
            });
        }
    }
    // Dead registry constants: registered but never named outside.
    // Only meaningful on multi-file runs — a lone registry fixture has
    // no use sites at all, so skip when the registry is the only file.
    if targets.len() > 1 {
        for (file, d) in &decls {
            if !outside_idents.contains(&d.name) {
                report.findings.push(Finding {
                    file: file.clone(),
                    line: d.line,
                    rule: "STREAM01".into(),
                    message: format!(
                        "registered stream tag `{}` is never referenced by any \
                         audited file; delete it or wire its subsystem up",
                        d.name
                    ),
                    suppressed: false,
                    reason: String::new(),
                    severity: Severity::Error,
                });
            }
        }
    }
    // Name hints for bare-literal findings whose value is registered.
    let value_names: BTreeMap<u64, &str> = decls
        .iter()
        .map(|(_, d)| (d.value, d.name.as_str()))
        .collect();
    for f in &mut report.findings {
        if f.rule != "STREAM01" || f.suppressed {
            continue;
        }
        if let Some(value) = site_values.get(&(f.file.clone(), f.line)) {
            if let Some(name) = value_names.get(value) {
                f.message.push_str(&format!(
                    " (this value is already registered — use `streams::{name}`)"
                ));
            }
        }
    }

    // ---- ALLOW02: suppressions that suppress nothing ----
    let severity = if opts.strict_allows {
        Severity::Error
    } else {
        Severity::Warn
    };
    let stale: Vec<Finding> = report
        .allows
        .iter()
        .filter(|a| !a.used)
        .map(|a| Finding {
            file: a.file.clone(),
            line: a.line,
            rule: "ALLOW02".into(),
            message: format!(
                "audit:allow({}) suppresses nothing on its line or the line \
                 below; remove the stale suppression",
                a.rule
            ),
            suppressed: false,
            reason: String::new(),
            severity,
        })
        .collect();
    report.findings.extend(stale);

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
}

/// Parse a baseline file (one `file:RULE` key per line, `#` comments)
/// and downgrade matching unsuppressed errors to warnings. Returns the
/// number of findings downgraded. The baseline grandfathers *kinds* of
/// findings per file, not line numbers, so unrelated edits don't churn
/// it.
pub fn apply_baseline(report: &mut Report, baseline: &str) -> usize {
    let keys: BTreeSet<&str> = baseline
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let mut downgraded = 0;
    for f in &mut report.findings {
        if f.suppressed || f.severity != Severity::Error {
            continue;
        }
        let key = format!("{}:{}", f.file, f.rule);
        if keys.contains(key.as_str()) {
            f.severity = Severity::Warn;
            downgraded += 1;
        }
    }
    downgraded
}

/// Render the baseline that would make the current report pass:
/// one `file:RULE` key per unsuppressed error, sorted and deduplicated.
pub fn render_baseline(report: &Report) -> String {
    let keys: BTreeSet<String> = report
        .errors()
        .map(|f| format!("{}:{}", f.file, f.rule))
        .collect();
    let mut out = String::from(
        "# ices-audit baseline: grandfathered `file:RULE` findings.\n\
         # Regenerate with `scripts/audit.sh --write-baseline`.\n",
    );
    for key in keys {
        out.push_str(&key);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here);
        assert!(root.is_some());
        let root = root.unwrap_or_default();
        assert!(root.join("crates").is_dir(), "{}", root.display());
    }

    #[test]
    fn workspace_targets_cover_every_crate() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here).unwrap_or_default();
        let targets = workspace_targets(&root);
        let mut crates: Vec<&str> = targets
            .iter()
            .map(|(_, c)| c.crate_name.as_str())
            .collect();
        crates.dedup();
        for expected in ["audit", "coord", "core", "par", "sim", "ices"] {
            assert!(crates.contains(&expected), "missing {expected}: {crates:?}");
        }
        // Crate roots are detected.
        assert!(targets
            .iter()
            .any(|(_, c)| c.crate_name == "par" && c.is_crate_root));
        // Exactly one registry file exists, and it is flagged as such.
        let registries: Vec<&FileContext> = targets
            .iter()
            .map(|(_, c)| c)
            .filter(|c| c.is_registry)
            .collect();
        assert_eq!(registries.len(), 1, "{registries:?}");
        assert_eq!(registries[0].path, REGISTRY_PATH);
    }

    #[test]
    fn bin_files_are_classified() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here).unwrap_or_default();
        let targets = workspace_targets(&root);
        let bench_bin = targets
            .iter()
            .find(|(p, _)| p.to_string_lossy().contains("bench/src/bin"));
        if let Some((_, ctx)) = bench_bin {
            assert_eq!(ctx.kind, FileKind::Bin);
        }
        let audit_main = targets
            .iter()
            .find(|(p, _)| p.to_string_lossy().ends_with("audit/src/main.rs"));
        assert!(matches!(audit_main, Some((_, c)) if c.kind == FileKind::Bin));
    }

    #[test]
    fn report_renders_and_serializes() {
        let report = Report {
            files_audited: 1,
            findings: vec![Finding {
                file: "x.rs".into(),
                line: 3,
                rule: "PANIC01".into(),
                message: "boom".into(),
                suppressed: false,
                reason: String::new(),
                severity: Severity::Error,
            }],
            allows: vec![],
        };
        let text = report.render_text();
        assert!(text.contains("x.rs:3: PANIC01"));
        assert!(report.is_dirty());
        let json = serde_json::to_string(&report).unwrap_or_default();
        assert!(json.contains("\"rule\""), "{json}");
        assert!(json.contains("\"severity\""), "{json}");
    }

    #[test]
    fn warnings_do_not_dirty_the_report() {
        let report = Report {
            files_audited: 1,
            findings: vec![Finding {
                file: "x.rs".into(),
                line: 9,
                rule: "ALLOW02".into(),
                message: "stale".into(),
                suppressed: false,
                reason: String::new(),
                severity: Severity::Warn,
            }],
            allows: vec![],
        };
        assert!(!report.is_dirty());
        assert!(report.render_text().contains("[warn]"));
    }

    #[test]
    fn baseline_downgrades_and_round_trips() {
        let mut report = Report {
            files_audited: 1,
            findings: vec![
                Finding {
                    file: "a.rs".into(),
                    line: 3,
                    rule: "PANIC02".into(),
                    message: "x".into(),
                    suppressed: false,
                    reason: String::new(),
                    severity: Severity::Error,
                },
                Finding {
                    file: "b.rs".into(),
                    line: 4,
                    rule: "DET01".into(),
                    message: "y".into(),
                    suppressed: false,
                    reason: String::new(),
                    severity: Severity::Error,
                },
            ],
            allows: vec![],
        };
        let baseline = render_baseline(&report);
        assert!(baseline.contains("a.rs:PANIC02"));
        assert!(baseline.contains("b.rs:DET01"));
        let n = apply_baseline(&mut report, &baseline);
        assert_eq!(n, 2);
        assert!(!report.is_dirty());
        // A fresh finding kind is NOT covered by the old baseline.
        report.findings.push(Finding {
            file: "c.rs".into(),
            line: 1,
            rule: "OBS02".into(),
            message: "z".into(),
            suppressed: false,
            reason: String::new(),
            severity: Severity::Error,
        });
        let mut again = report;
        assert_eq!(apply_baseline(&mut again, &baseline), 0);
        assert!(again.is_dirty());
    }
}
