//! CLI for the workspace determinism & panic-hygiene audit.
//!
//! ```text
//! ices-audit --workspace [--json] [--root PATH]
//! ices-audit [--json] [--context CRATE] PATH...
//! ```
//!
//! `--workspace` audits every `crates/*/src` file plus the root facade
//! crate. Explicit paths are audited under the strictest context (all
//! rules armed) — this is how the bad-fixture files are exercised —
//! unless `--context CRATE` selects a specific crate's rule set (e.g.
//! `--context obs` arms OBS01, `--context bench` relaxes DET02).
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/IO error.

use ices_audit::{adhoc_targets_as, audit_targets, find_workspace_root, workspace_targets};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ices-audit --workspace [--json] [--root PATH]\n\
         \x20      ices-audit [--json] [--context CRATE] PATH..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut root_override: Option<PathBuf> = None;
    let mut context = "adhoc".to_string();
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root_override = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--context" => match args.next() {
                Some(name) => context = name,
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => return usage(),
            path => paths.push(PathBuf::from(path)),
        }
    }

    let targets = if workspace {
        let start = root_override.clone().or_else(|| std::env::current_dir().ok());
        let Some(start) = start else {
            eprintln!("ices-audit: cannot determine a starting directory");
            return ExitCode::from(2);
        };
        let Some(root) = find_workspace_root(&start) else {
            eprintln!(
                "ices-audit: no workspace Cargo.toml above {}",
                start.display()
            );
            return ExitCode::from(2);
        };
        workspace_targets(&root)
    } else if !paths.is_empty() {
        adhoc_targets_as(&paths, &context)
    } else {
        return usage();
    };

    let report = audit_targets(&targets);

    if json {
        match serde_json::to_string_pretty(&report) {
            Ok(text) => println!("{text}"),
            Err(err) => {
                eprintln!("ices-audit: cannot serialize report: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        print!("{}", report.render_text());
    }

    if report.is_dirty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
