//! CLI for the workspace determinism & panic-hygiene audit.
//!
//! ```text
//! ices-audit --workspace [--json] [--root PATH] [--strict-allows]
//!            [--baseline FILE | --write-baseline FILE]
//! ices-audit [--json] [--context CRATE] PATH...
//! ```
//!
//! `--workspace` audits every `crates/*/src` file plus the root facade
//! crate. Explicit paths are audited under the strictest context (all
//! rules armed) — this is how the bad-fixture files are exercised —
//! unless `--context CRATE` selects a specific crate's rule set (e.g.
//! `--context obs` arms OBS01, `--context bench` relaxes DET02).
//!
//! `--strict-allows` promotes stale suppressions (ALLOW02) from
//! warnings to errors. `--baseline FILE` downgrades findings whose
//! `file:RULE` key appears in FILE to warnings (grandfathering);
//! `--write-baseline FILE` writes the baseline that would make the
//! current tree pass, then exits by the *pre*-baseline verdict.
//!
//! Exit codes: 0 clean, 1 unsuppressed errors, 2 usage/IO error.

use ices_audit::{
    adhoc_targets_as, apply_baseline, audit_targets_with, find_workspace_root, render_baseline,
    workspace_targets, AuditOptions,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ices-audit --workspace [--json] [--root PATH] [--strict-allows]\n\
         \x20                 [--baseline FILE | --write-baseline FILE]\n\
         \x20      ices-audit [--json] [--context CRATE] PATH..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut root_override: Option<PathBuf> = None;
    let mut context = "adhoc".to_string();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut opts = AuditOptions::default();
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--strict-allows" => opts.strict_allows = true,
            "--root" => match args.next() {
                Some(p) => root_override = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--context" => match args.next() {
                Some(name) => context = name,
                None => return usage(),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => return usage(),
            path => paths.push(PathBuf::from(path)),
        }
    }
    if baseline.is_some() && write_baseline.is_some() {
        return usage();
    }

    let targets = if workspace {
        let start = root_override.clone().or_else(|| std::env::current_dir().ok());
        let Some(start) = start else {
            eprintln!("ices-audit: cannot determine a starting directory");
            return ExitCode::from(2);
        };
        let Some(root) = find_workspace_root(&start) else {
            eprintln!(
                "ices-audit: no workspace Cargo.toml above {}",
                start.display()
            );
            return ExitCode::from(2);
        };
        workspace_targets(&root)
    } else if !paths.is_empty() {
        adhoc_targets_as(&paths, &context)
    } else {
        return usage();
    };

    let mut report = audit_targets_with(&targets, &opts);

    if let Some(path) = &write_baseline {
        if let Err(err) = std::fs::write(path, render_baseline(&report)) {
            eprintln!("ices-audit: cannot write baseline {}: {err}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("ices-audit: baseline written to {}", path.display());
    }
    if let Some(path) = &baseline {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let n = apply_baseline(&mut report, &text);
                if n > 0 {
                    eprintln!(
                        "ices-audit: {n} finding(s) downgraded by baseline {}",
                        path.display()
                    );
                }
            }
            Err(err) => {
                eprintln!("ices-audit: cannot read baseline {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if json {
        match serde_json::to_string_pretty(&report) {
            Ok(text) => println!("{text}"),
            Err(err) => {
                eprintln!("ices-audit: cannot serialize report: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        print!("{}", report.render_text());
    }

    if report.is_dirty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
