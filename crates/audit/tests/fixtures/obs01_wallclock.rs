//! OBS01 fixture: wall-clock timing inside the observability crate,
//! where all time must flow through the `Clock` trait.

pub fn stamp_ms() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis()
}
