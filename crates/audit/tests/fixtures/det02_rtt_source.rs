//! DET02 fixture: an `RttSource`-shaped impl that reads the wall clock
//! inside `base_rtt`. Under the netsim context this must be flagged —
//! per-pair RTT synthesis has to be a pure function of
//! `(seed, min(a,b), max(a,b))`, never of when the probe was issued.

pub trait RttSource {
    fn node_count(&self) -> usize;
    fn base_rtt(&self, a: usize, b: usize) -> f64;
}

pub struct JitterySource;

impl RttSource for JitterySource {
    fn node_count(&self) -> usize {
        0
    }

    fn base_rtt(&self, _a: usize, _b: usize) -> f64 {
        let t = std::time::Instant::now();
        t.elapsed().as_secs_f64()
    }
}
