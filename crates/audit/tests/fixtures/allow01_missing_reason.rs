//! ALLOW01 fixture: a suppression without its mandatory reason.

pub fn first(xs: &[u8]) -> u8 {
    *xs.first().unwrap() // audit:allow(PANIC01)
}
