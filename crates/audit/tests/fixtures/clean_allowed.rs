//! Clean fixture: a reasoned suppression keeps the audit green.

pub fn first(xs: &[u8]) -> u8 {
    // audit:allow(PANIC01): fixture demonstrating a well-formed reasoned suppression
    *xs.first().unwrap()
}
