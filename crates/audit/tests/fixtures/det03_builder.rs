//! DET03 fixture: a named worker spawned via `thread::Builder` outside
//! ices-par — the pool-style spawn site the pool rule must still catch.

pub fn named_worker() {
    let handle = std::thread::Builder::new()
        .name("rogue-worker".into())
        .spawn(|| 1 + 1);
    drop(handle);
}
