//! Bad fixture: bare 4-byte stream tags outside the registry
//! (STREAM01) — one hex form, one string form inside a stream
//! constructor. The non-tag mask and the 4-char string that never
//! reaches a constructor must stay invisible.

pub fn rngs(seed: u64) -> (SimRng, SimRng) {
    let mask = seed & 0xFFFF_FFFF;
    let label = "VICT";
    let _ = label;
    let a = SimRng::from_stream(mask, 0x5649_4354, 0);
    let b = SimRng::from_stream(seed, "VICT", 1);
    (a, b)
}
