//! Bad fixture: a literal slice index in library code (PANIC02) — the
//! `&candidates[0]` panic class. Variable indices and array literals
//! below must stay invisible.

pub fn first(v: &[f64], i: usize) -> f64 {
    let _table = [0.0; 4];
    let _ok = v[i];
    v[0]
}
