//! Bad fixture: a chunked (reassociation-prone) reduction outside a
//! `fast` module (FAST01). The plain iterator sum below must stay
//! invisible — only the `chunks_exact` call site fires.

pub fn lane_sum(v: &[f64]) -> f64 {
    let mut total = 0.0;
    for c in v.chunks_exact(4) {
        total += c.iter().sum::<f64>();
    }
    total + v.iter().sum::<f64>()
}
