//! Bad fixture: a reasoned but stale suppression (ALLOW02) — the allow
//! is well-formed, yet nothing on its line or the line below trips
//! PANIC02, so the suppression is dead weight.

// audit:allow(PANIC02): stale — nothing below indexes anything
pub fn fine() -> u64 {
    7
}
