//! DET01 fixture: a seed-dependent container in library code.

pub fn order(keys: &[u64]) -> std::collections::HashMap<u64, usize> {
    keys.iter().enumerate().map(|(i, &k)| (k, i)).collect()
}
