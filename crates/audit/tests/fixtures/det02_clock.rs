//! DET02 fixture: wall-clock timing in library code.

pub fn elapsed_ms() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis()
}
