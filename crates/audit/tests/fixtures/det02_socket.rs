//! DET02 fixture: real network I/O in library code. Sockets are the
//! service daemon's (`crates/svc`) alone — a simulation or bench crate
//! opening one bypasses `ices-netsim`'s deterministic RTT synthesis.

pub fn leak_a_socket() -> bool {
    std::net::UdpSocket::bind("127.0.0.1:0").is_ok()
}
