//! PANIC01 fixture: a panicking path in non-test library code.

pub fn first(xs: &[u8]) -> u8 {
    *xs.first().unwrap()
}
