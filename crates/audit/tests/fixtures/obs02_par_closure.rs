//! Bad fixture: an obs registry mutation inside a closure passed to a
//! parallel entry point (OBS02). The mutation before the call is legal
//! — only the parallel phase must stay observation-silent.

pub fn run(reg: &Registry, xs: &[u64]) -> Vec<u64> {
    reg.inc("runs", 1);
    par_map(xs, |x| {
        reg.inc("items", 1);
        x + 1
    })
}
