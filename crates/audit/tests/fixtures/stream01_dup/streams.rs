//! Bad fixture: a registry (this file is named `streams.rs`, so the
//! adhoc context treats it as one) declaring the same tag value twice —
//! the `"VICT"` collision class STREAM01 exists to prevent.

pub const VICT: u64 = 0x5649_4354;
pub const NPSV: u64 = 0x5649_4354;
