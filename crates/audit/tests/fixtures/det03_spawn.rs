//! DET03 fixture: raw thread parallelism outside ices-par.

pub fn race() -> i32 {
    let handle = std::thread::spawn(|| 1 + 1);
    handle.join().unwrap_or(0)
}
