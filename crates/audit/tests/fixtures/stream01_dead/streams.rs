//! Bad fixture registry for the dead-constant check: `CHRN` below is
//! never referenced by `user.rs`, so the cross-crate pass must flag it.

pub const FALT: u64 = 0x4641_4C54;
pub const CHRN: u64 = 0x4348_524E;
