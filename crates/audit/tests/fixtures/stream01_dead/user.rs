//! The lone consumer of the dead-constant fixture registry: it uses
//! `FALT` but never `CHRN`.

pub fn faults(seed: u64) -> SimRng {
    SimRng::from_stream(seed, streams::FALT, 0)
}
