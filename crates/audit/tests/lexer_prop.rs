//! Property tests of the audit lexer: rule trigger tokens buried in
//! comments, strings, and raw strings must never produce findings, and
//! a real trigger must keep its exact line number under arbitrary
//! interleavings of such noise. `audit:allow` round-trips its reason.

use ices_audit::rules::{audit_source, FileContext, FileKind};
use proptest::prelude::*;

/// Identifiers that arm DET01/DET02/DET03/PANIC01 when tokenized.
const TRIGGERS: [&str; 7] = [
    "HashMap",
    "HashSet",
    "thread_rng",
    "SystemTime",
    "from_entropy",
    "unwrap",
    "expect",
];

fn ctx() -> FileContext {
    FileContext {
        path: "prop/input.rs".into(),
        crate_name: "adhoc".into(),
        kind: FileKind::Lib,
        is_crate_root: false,
        is_registry: false,
    }
}

/// One line of noise: a trigger word hidden where the lexer must not
/// see it (comment, nested block comment, string, raw string), or a
/// harmless filler statement.
fn noise(kind: usize, t: usize) -> String {
    let trig = TRIGGERS[t % TRIGGERS.len()];
    match kind % 6 {
        0 => format!("// x.{trig}() and Instant::now() in a line comment\n"),
        1 => format!("/* thread::spawn plus {trig} /* nested */ still a comment */\n"),
        2 => format!("let s = \"a.{trig}() and std::thread::spawn(|| 1)\";\n"),
        3 => format!("let r = r#\"raw {trig} with a \" quote and Instant::now()\"#;\n"),
        4 => format!("let b = b\"bytes with {trig} inside\";\n"),
        _ => "let filler = 1 + 2;\n".to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn noise_never_triggers_findings(
        segs in proptest::collection::vec((0usize..6, 0usize..7), 1..40),
    ) {
        let src: String = segs.iter().map(|&(k, t)| noise(k, t)).collect();
        let report = audit_source(&ctx(), &src);
        prop_assert!(
            report.findings.is_empty(),
            "false positives {:?} from:\n{}",
            report.findings,
            src
        );
        prop_assert!(report.allows.is_empty());
    }

    #[test]
    fn real_trigger_keeps_its_line_under_noise(
        segs in proptest::collection::vec((0usize..6, 0usize..7), 0..30),
    ) {
        let prefix: String = segs.iter().map(|&(k, t)| noise(k, t)).collect();
        let line = prefix.matches('\n').count() as u32 + 1;
        let src = format!("{prefix}let m: HashMap<u8, u8> = Default::default();\n");
        let report = audit_source(&ctx(), &src);
        prop_assert!(report.findings.len() == 1, "{:?}", report.findings);
        let f = &report.findings[0];
        prop_assert!(f.rule == "DET01", "{f:?}");
        prop_assert!(f.line == line, "expected line {line}, got {f:?}");
    }

    #[test]
    fn allow_reason_round_trips(
        reason_idx in proptest::collection::vec(0usize..26, 1..24),
        indent in 0usize..4,
    ) {
        let reason: String = reason_idx
            .iter()
            .map(|&i| (b'a' + i as u8) as char)
            .collect();
        let pad = "    ".repeat(indent);
        let src = format!(
            "pub fn f(x: Option<u8>) -> u8 {{\n{pad}x.unwrap() // audit:allow(PANIC01): {reason}\n}}\n"
        );
        let report = audit_source(&ctx(), &src);
        prop_assert!(report.findings.len() == 1, "{:?}", report.findings);
        prop_assert!(report.findings[0].suppressed, "{:?}", report.findings);
        prop_assert!(report.allows.len() == 1);
        prop_assert!(report.allows[0].used);
        prop_assert!(
            report.allows[0].reason == reason,
            "reason mangled: {:?} vs {reason:?}",
            report.allows[0].reason
        );
    }
}
