//! Property tests of the token-tree dataflow rules: tag-shaped content
//! inside raw strings (any hash depth) must stay invisible, a literal
//! index must be found at its exact line under arbitrary group nesting,
//! a stream-constructor tag keeps its line when the argument list spans
//! many lines, and OBS02 fires inside a parallel closure's body and
//! only there.

use ices_audit::rules::{audit_source, FileContext, FileKind};
use proptest::prelude::*;

fn ctx() -> FileContext {
    FileContext {
        path: "prop/input.rs".into(),
        crate_name: "adhoc".into(),
        kind: FileKind::Lib,
        is_crate_root: false,
        is_registry: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn raw_strings_of_any_hash_depth_hide_stream_tags(
        hashes in 1usize..4,
        filler in 0usize..8,
    ) {
        let h = "#".repeat(hashes);
        let pad = "let filler = 0;\n".repeat(filler);
        let src = format!(
            "{pad}let s = r{h}\"from_stream 0x5649_4354 \"VICT\" stream_rng\"{h};\n"
        );
        let report = audit_source(&ctx(), &src);
        prop_assert!(
            report.findings.is_empty(),
            "tags inside a raw string leaked: {:?} from:\n{src}",
            report.findings
        );
    }

    #[test]
    fn literal_index_keeps_its_line_at_any_nesting_depth(
        depth in 0usize..8,
        pre_lines in 0usize..10,
    ) {
        let pad = "\n".repeat(pre_lines);
        let open = "(".repeat(depth);
        let close = ")".repeat(depth);
        let src = format!("pub fn f(v: &[u8]) -> u8 {{\n{pad}    {open}v[0]{close}\n}}\n");
        let line = 2 + pre_lines as u32;
        let report = audit_source(&ctx(), &src);
        prop_assert!(report.findings.len() == 1, "{:?} from:\n{src}", report.findings);
        let f = &report.findings[0];
        prop_assert!(f.rule == "PANIC02", "{f:?}");
        prop_assert!(f.line == line, "expected line {line}: {f:?}");
    }

    #[test]
    fn ctor_tag_keeps_its_line_when_arguments_span_lines(
        lead_args in 0usize..6,
        byte_form in 0usize..2,
    ) {
        let tag = if byte_form == 0 { "b\"VICT\"" } else { "\"VICT\"" };
        let args = "        seed,\n".repeat(lead_args);
        let src = format!(
            "pub fn f(seed: u64) {{\n    let _r = SimRng::from_stream(\n{args}        {tag},\n        7,\n    );\n}}\n"
        );
        let line = 3 + lead_args as u32;
        let report = audit_source(&ctx(), &src);
        prop_assert!(report.findings.len() == 1, "{:?} from:\n{src}", report.findings);
        let f = &report.findings[0];
        prop_assert!(f.rule == "STREAM01", "{f:?}");
        prop_assert!(f.line == line, "expected line {line}: {f:?}");
    }

    #[test]
    fn obs02_fires_inside_the_closure_and_only_there(
        body_lines in 0usize..6,
        inside in 0usize..2,
    ) {
        let filler = "        let _pad = 0;\n".repeat(body_lines);
        let (src, expect_line) = if inside == 0 {
            let line = 3 + body_lines as u32;
            (
                format!(
                    "pub fn f(reg: &Registry, xs: &[u8]) {{\n    par_map(xs, |x| {{\n{filler}        reg.inc(\"k\", 1);\n        x\n    }});\n}}\n"
                ),
                Some(line),
            )
        } else {
            (
                format!(
                    "pub fn f(reg: &Registry, xs: &[u8]) {{\n    reg.inc(\"k\", 1);\n    par_map(xs, |x| {{\n{filler}        x\n    }});\n    reg.inc(\"k\", 1);\n}}\n"
                ),
                None,
            )
        };
        let report = audit_source(&ctx(), &src);
        match expect_line {
            Some(line) => {
                prop_assert!(report.findings.len() == 1, "{:?} from:\n{src}", report.findings);
                let f = &report.findings[0];
                prop_assert!(f.rule == "OBS02", "{f:?}");
                prop_assert!(f.line == line, "expected line {line}: {f:?}");
            }
            None => prop_assert!(
                report.findings.is_empty(),
                "mutations outside the closure leaked: {:?} from:\n{src}",
                report.findings
            ),
        }
    }
}
