//! Each bad fixture must produce exactly its rule's finding with the
//! right `file:line`, through the library API and through the binary
//! (which must exit nonzero on it).

use ices_audit::{adhoc_targets, adhoc_targets_as, audit_targets, audit_targets_with, AuditOptions, Report};
use ices_audit::rules::Severity;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn audit_fixture(name: &str) -> Report {
    let targets = adhoc_targets(&[fixture(name)]);
    let report = audit_targets(&targets);
    assert_eq!(report.files_audited, 1, "fixture {name} was not read");
    report
}

/// Assert the fixture yields exactly one finding: `rule` at `line`.
fn assert_single_finding(name: &str, rule: &str, line: u32) {
    let report = audit_fixture(name);
    assert_eq!(
        report.findings.len(),
        1,
        "{name}: expected one finding, got {:?}",
        report.findings
    );
    let f = &report.findings[0];
    assert_eq!(f.rule, rule, "{name}: wrong rule: {f:?}");
    assert_eq!(f.line, line, "{name}: wrong line: {f:?}");
    assert!(!f.suppressed, "{name}: must be unsuppressed: {f:?}");
    assert!(
        f.file.ends_with(&format!("tests/fixtures/{name}")),
        "{name}: finding names the wrong file: {}",
        f.file
    );
    assert!(report.is_dirty());
}

#[test]
fn det01_hashmap_fixture() {
    assert_single_finding("det01_hashmap.rs", "DET01", 3);
}

#[test]
fn det02_clock_fixture() {
    assert_single_finding("det02_clock.rs", "DET02", 4);
}

#[test]
fn det03_spawn_fixture() {
    assert_single_finding("det03_spawn.rs", "DET03", 4);
}

#[test]
fn det03_builder_fixture() {
    assert_single_finding("det03_builder.rs", "DET03", 5);
    // The same pool-style spawn site is sanctioned inside crates/par.
    let targets = adhoc_targets_as(&[fixture("det03_builder.rs")], "par");
    let report = audit_targets(&targets);
    assert!(
        report.findings.is_empty(),
        "Builder spawns are par's to make: {:?}",
        report.findings
    );
}

#[test]
fn rtt_source_wallclock_fixture_fires_det02_under_netsim() {
    // An RttSource impl that consults the wall clock must dirty the
    // audit in netsim's context: base RTT synthesis is required to be
    // a pure function of (seed, lo, hi).
    let targets = adhoc_targets_as(&[fixture("det02_rtt_source.rs")], "netsim");
    let report = audit_targets(&targets);
    assert_eq!(
        report.findings.len(),
        1,
        "expected one finding: {:?}",
        report.findings
    );
    let f = &report.findings[0];
    assert_eq!((f.rule.as_str(), f.line), ("DET02", 19), "{f:?}");
    assert!(report.is_dirty());
}

#[test]
fn det02_socket_fixture_fires_everywhere_but_svc() {
    // Default (strictest) context: a socket is a DET02 hazard.
    assert_single_finding("det02_socket.rs", "DET02", 6);
    // Simulation and bench contexts keep the rule armed — bench has a
    // wall-clock license, not a socket one.
    for context in ["netsim", "sim", "bench"] {
        let targets = adhoc_targets_as(&[fixture("det02_socket.rs")], context);
        let report = audit_targets(&targets);
        assert_eq!(
            report.findings.len(),
            1,
            "socket under the {context} context: {:?}",
            report.findings
        );
        let f = &report.findings[0];
        assert_eq!((f.rule.as_str(), f.line), ("DET02", 6), "{context}: {f:?}");
        assert!(f.message.contains("crates/svc"), "{context}: {f:?}");
        assert!(report.is_dirty());
    }
    // The daemon crate is the one sanctioned socket home.
    let targets = adhoc_targets_as(&[fixture("det02_socket.rs")], "svc");
    let report = audit_targets(&targets);
    assert!(
        report.findings.is_empty(),
        "sockets are svc's to open: {:?}",
        report.findings
    );
}

#[test]
fn svc_context_licenses_wallclock_and_spawns_but_not_hashmaps() {
    // The daemon's clock reads and worker spawns are by design...
    for name in ["det02_clock.rs", "det03_spawn.rs", "det03_builder.rs"] {
        let targets = adhoc_targets_as(&[fixture(name)], "svc");
        let report = audit_targets(&targets);
        assert!(
            report.findings.is_empty(),
            "{name} must be clean under the svc context: {:?}",
            report.findings
        );
    }
}

#[test]
fn panic01_unwrap_fixture() {
    assert_single_finding("panic01_unwrap.rs", "PANIC01", 4);
}

#[test]
fn det02_and_panic01_cover_the_attack_crate() {
    // The adversary implementations answer `intercept` purely from
    // `(seed, tick, victim, peer)` streams — a wall-clock read or a
    // stray unwrap in `crates/attack` would break bit-identical replay,
    // so the attack context must keep both rules armed.
    for (name, rule, line) in [("det02_clock.rs", "DET02", 4), ("panic01_unwrap.rs", "PANIC01", 4)] {
        let targets = adhoc_targets_as(&[fixture(name)], "attack");
        let report = audit_targets(&targets);
        assert_eq!(
            report.findings.len(),
            1,
            "{name} under the attack context: {:?}",
            report.findings
        );
        let f = &report.findings[0];
        assert_eq!((f.rule.as_str(), f.line), (rule, line), "{f:?}");
        assert!(report.is_dirty(), "{rule} must dirty the attack audit");
    }
}

#[test]
fn safe01_fixture_is_a_crate_root() {
    assert_single_finding("safe01/lib.rs", "SAFE01", 1);
}

#[test]
fn obs01_fixture_fires_only_under_the_obs_context() {
    // Under the obs crate's rules the wall-clock read is an OBS01 (and
    // exactly one finding — OBS01 supersedes DET02 there).
    let targets = adhoc_targets_as(&[fixture("obs01_wallclock.rs")], "obs");
    let report = audit_targets(&targets);
    assert_eq!(
        report.findings.len(),
        1,
        "expected one finding: {:?}",
        report.findings
    );
    let f = &report.findings[0];
    assert_eq!((f.rule.as_str(), f.line), ("OBS01", 5), "{f:?}");
    assert!(f.message.contains("Clock"), "{f:?}");
    // The default (strictest) context reports the same line as DET02.
    let report = audit_fixture("obs01_wallclock.rs");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "DET02");
}

#[test]
fn binary_context_flag_selects_the_obs_rules() {
    let out = Command::new(env!("CARGO_BIN_EXE_ices-audit"))
        .args(["--context", "obs"])
        .arg(fixture("obs01_wallclock.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running ices-audit: {e}"));
    assert!(!out.status.success(), "OBS01 must dirty the audit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OBS01"), "{stdout}");
    assert!(!stdout.contains("DET02"), "double-reported: {stdout}");
}

#[test]
fn allow01_fixture_reports_malformed_allow_and_keeps_the_finding() {
    let report = audit_fixture("allow01_missing_reason.rs");
    let rules: Vec<(&str, u32, bool)> = report
        .findings
        .iter()
        .map(|f| (f.rule.as_str(), f.line, f.suppressed))
        .collect();
    assert!(
        rules.contains(&("ALLOW01", 4, false)),
        "missing ALLOW01: {rules:?}"
    );
    assert!(
        rules.contains(&("PANIC01", 4, false)),
        "a malformed allow must not suppress: {rules:?}"
    );
    assert!(report.allows.is_empty(), "malformed allows are not inventoried");
}

#[test]
fn clean_fixture_is_suppressed_with_inventoried_reason() {
    let report = audit_fixture("clean_allowed.rs");
    assert!(!report.is_dirty(), "{:?}", report.findings);
    assert_eq!(report.findings.len(), 1);
    assert!(report.findings[0].suppressed);
    assert_eq!(report.allows.len(), 1);
    assert!(report.allows[0].used);
    assert_eq!(
        report.allows[0].reason,
        "fixture demonstrating a well-formed reasoned suppression"
    );
}

#[test]
fn binary_exits_nonzero_on_each_bad_fixture() {
    for name in [
        "det01_hashmap.rs",
        "det02_clock.rs",
        "det02_rtt_source.rs",
        "det02_socket.rs",
        "det03_spawn.rs",
        "det03_builder.rs",
        "panic01_unwrap.rs",
        "panic02_literal_index.rs",
        "obs02_par_closure.rs",
        "fast01_chunked_reduction.rs",
        "stream01_bare_tag.rs",
        "stream01_dup/streams.rs",
        "safe01/lib.rs",
        "allow01_missing_reason.rs",
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_ices-audit"))
            .arg(fixture(name))
            .output()
            .unwrap_or_else(|e| panic!("running ices-audit on {name}: {e}"));
        assert!(
            !out.status.success(),
            "{name} should dirty the audit:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn binary_exits_zero_and_emits_json_on_the_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_ices-audit"))
        .arg("--json")
        .arg(fixture("clean_allowed.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running ices-audit: {e}"));
    assert!(
        out.status.success(),
        "clean fixture must exit 0:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\""), "not JSON: {stdout}");
    assert!(stdout.contains("PANIC01"), "{stdout}");
}

#[test]
fn panic02_fixture_flags_only_the_literal_index() {
    assert_single_finding("panic02_literal_index.rs", "PANIC02", 8);
}

#[test]
fn obs02_fixture_flags_only_the_closure_body_mutation() {
    assert_single_finding("obs02_par_closure.rs", "OBS02", 8);
}

#[test]
fn fast01_fixture_flags_only_the_chunked_call() {
    assert_single_finding("fast01_chunked_reduction.rs", "FAST01", 7);
    // The same reduction is sanctioned where fast kernels live: a
    // module named `fast`, or anywhere in crates/par (the tier's home).
    let mut targets = adhoc_targets(&[fixture("fast01_chunked_reduction.rs")]);
    for (_, ctx) in &mut targets {
        ctx.path = "crates/nps/src/fast.rs".into();
    }
    let report = audit_targets(&targets);
    assert!(
        report.findings.is_empty(),
        "fast modules may reassociate: {:?}",
        report.findings
    );
    let targets = adhoc_targets_as(&[fixture("fast01_chunked_reduction.rs")], "par");
    let report = audit_targets(&targets);
    assert!(
        report.findings.is_empty(),
        "crates/par owns the tier knob: {:?}",
        report.findings
    );
}

#[test]
fn stream01_fixture_flags_hex_and_ctor_string_tags() {
    let report = audit_fixture("stream01_bare_tag.rs");
    let got: Vec<(&str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.as_str(), f.line))
        .collect();
    assert_eq!(got, [("STREAM01", 10), ("STREAM01", 11)], "{:?}", report.findings);
    assert!(report.is_dirty());
}

#[test]
fn stream01_duplicate_registry_fixture_flags_both_declarations() {
    let report = audit_fixture("stream01_dup/streams.rs");
    let got: Vec<(&str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.as_str(), f.line))
        .collect();
    assert_eq!(got, [("STREAM01", 5), ("STREAM01", 6)], "{:?}", report.findings);
    assert!(report.findings[0].message.contains("NPSV"), "{:?}", report.findings);
    assert!(report.is_dirty());
}

#[test]
fn stream01_dead_constant_fixture_flags_the_unused_tag() {
    let targets = adhoc_targets(&[fixture("stream01_dead")]);
    let report = audit_targets(&targets);
    assert_eq!(report.files_audited, 2);
    let got: Vec<(&str, &str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.file.rsplit('/').next().unwrap_or(""), f.rule.as_str(), f.line))
        .collect();
    assert_eq!(got, [("streams.rs", "STREAM01", 5)], "{:?}", report.findings);
    assert!(
        report.findings[0].message.contains("CHRN"),
        "{:?}",
        report.findings
    );
    assert!(report.is_dirty());
}

#[test]
fn allow02_fixture_warns_by_default_and_fails_under_strict() {
    let report = audit_fixture("allow02_stale.rs");
    let got: Vec<(&str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.as_str(), f.line))
        .collect();
    assert_eq!(got, [("ALLOW02", 5)], "{:?}", report.findings);
    assert_eq!(report.findings[0].severity, Severity::Warn);
    assert!(!report.is_dirty(), "stale allows are advisory by default");

    let targets = adhoc_targets(&[fixture("allow02_stale.rs")]);
    let strict = AuditOptions {
        strict_allows: true,
    };
    let report = audit_targets_with(&targets, &strict);
    assert_eq!(report.findings[0].severity, Severity::Error);
    assert!(report.is_dirty(), "--strict-allows must fail stale allows");
}

#[test]
fn binary_strict_allows_flag_gates_the_exit_code() {
    let clean = Command::new(env!("CARGO_BIN_EXE_ices-audit"))
        .arg(fixture("allow02_stale.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running ices-audit: {e}"));
    assert!(
        clean.status.success(),
        "stale allow must be a warning by default:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );
    let strict = Command::new(env!("CARGO_BIN_EXE_ices-audit"))
        .arg("--strict-allows")
        .arg(fixture("allow02_stale.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running ices-audit: {e}"));
    assert!(
        !strict.status.success(),
        "--strict-allows must exit nonzero:\n{}",
        String::from_utf8_lossy(&strict.stdout)
    );
    let stdout = String::from_utf8_lossy(&strict.stdout);
    assert!(stdout.contains("ALLOW02"), "{stdout}");
}

#[test]
fn binary_baseline_round_trip_grandfathers_then_catches_fresh_findings() {
    let dir = std::env::temp_dir().join("ices_audit_baseline_test");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir: {e}"));
    let baseline = dir.join("baseline.txt");
    // Write the baseline for the PANIC02 fixture...
    let write = Command::new(env!("CARGO_BIN_EXE_ices-audit"))
        .arg("--write-baseline")
        .arg(&baseline)
        .arg(fixture("panic02_literal_index.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running ices-audit: {e}"));
    assert!(!write.status.success(), "pre-baseline verdict still gates");
    // ...then the same audit under that baseline passes...
    let under = Command::new(env!("CARGO_BIN_EXE_ices-audit"))
        .arg("--baseline")
        .arg(&baseline)
        .arg(fixture("panic02_literal_index.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running ices-audit: {e}"));
    assert!(
        under.status.success(),
        "baselined finding must downgrade:\n{}",
        String::from_utf8_lossy(&under.stdout)
    );
    // ...but a finding kind outside the baseline still fails.
    let fresh = Command::new(env!("CARGO_BIN_EXE_ices-audit"))
        .arg("--baseline")
        .arg(&baseline)
        .arg(fixture("panic02_literal_index.rs"))
        .arg(fixture("obs02_par_closure.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running ices-audit: {e}"));
    assert!(
        !fresh.status.success(),
        "un-baselined finding must still fail:\n{}",
        String::from_utf8_lossy(&fresh.stdout)
    );
}
