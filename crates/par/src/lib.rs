//! Deterministic, std-only parallel execution for the simulation engine.
//!
//! Every entry point preserves **input order in its output** regardless of
//! which worker processed which item, so callers that are themselves
//! order-independent (the two-phase tick loops, the detection sweeps)
//! produce bit-for-bit identical results at any worker count.
//!
//! Work is executed by a process-wide **persistent worker pool** (see
//! [`pool`]): threads are spawned once, parked on a condvar between
//! calls, and handed **static contiguous partitions** — no work stealing,
//! no shared cursor — so the partition each worker runs is a pure
//! function of `(input length, resolved thread count)` and results are
//! bit-for-bit identical to the sequential path at any `ICES_THREADS`.
//!
//! Worker-count resolution, in priority order:
//! 1. a thread-local override installed by [`with_threads`] (used by the
//!    determinism tests so parallel test binaries don't race on the
//!    process environment),
//! 2. the `ICES_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! A resolved count of 1 (`ICES_THREADS=1`) takes the plain sequential
//! path — no threads are spawned at all, making the single-threaded
//! schedule *exactly* the naive loop.
//!
//! Panics inside worker closures propagate to the caller when the
//! dispatch completes its barrier, so a failing item still fails the run.
//!
//! This crate also owns the **numeric tier** knob ([`FAST_ENV`] /
//! [`fast_enabled`] / [`with_fast`]): the process-wide switch between
//! the exact tier (bit-for-bit reproducible, the default) and the
//! opt-in fast tier (reassociated reductions in `fast` modules). It
//! lives here rather than in a numeric crate because it is resolved the
//! same way as the worker count and obeys the same override discipline.

// The pool module needs lifetime erasure (as rayon does) and carries the
// workspace's only sanctioned `unsafe`; everything else in this crate
// still refuses it at lint level `deny`.
#![deny(unsafe_code)]

mod pool;

use std::cell::Cell;
use std::sync::{Mutex, PoisonError};

/// One `par_map_mut` partition slot: (chunk base index, the partition's
/// exclusive sub-slice, its result vector).
type MutTask<'a, T, R> = Mutex<(usize, Option<&'a mut [T]>, Vec<R>)>;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static FAST_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Name of the environment variable overriding the worker count.
pub const THREADS_ENV: &str = "ICES_THREADS";

/// Name of the environment variable selecting the fast numeric tier.
///
/// `ICES_FAST=1` opts into reassociated chunked reductions in the hot
/// numeric kernels (the NPS flat objective, the batched detector
/// threshold test). The fast tier trades the bit-for-bit determinism
/// contract for throughput: results are still deterministic *per tier*
/// (fast runs match fast runs exactly), but fast-tier outputs differ
/// from exact-tier outputs in the low bits. `ICES_FAST=0` (or unset) is
/// the exact tier.
pub const FAST_ENV: &str = "ICES_FAST";

/// Parse an `ICES_FAST` value.
///
/// Accepts exactly `1` (fast tier) or `0` (exact tier), surrounding
/// whitespace ignored. Anything else is an error — like
/// [`parse_threads`], a typo'd configuration is surfaced instead of
/// silently selecting a numeric tier the operator did not ask for.
pub fn parse_fast(raw: &str) -> Result<bool, String> {
    match raw.trim() {
        "1" => Ok(true),
        "0" => Ok(false),
        other => Err(format!(
            "{FAST_ENV} must be 1 (fast reassociated tier) or 0 (exact tier), got {other:?}"
        )),
    }
}

/// Resolve the numeric tier: [`with_fast`] override, then `ICES_FAST`,
/// then the exact tier.
///
/// An invalid `ICES_FAST` value is reported once on stderr with the
/// [`parse_fast`] error and then ignored in favor of the exact tier —
/// the same loud-fallback policy as [`max_threads`], erring toward the
/// tier whose outputs are covered by the determinism contract.
pub fn fast_enabled() -> bool {
    if let Some(fast) = FAST_OVERRIDE.with(Cell::get) {
        return fast;
    }
    if let Ok(raw) = std::env::var(FAST_ENV) {
        match parse_fast(&raw) {
            Ok(fast) => return fast,
            Err(message) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!("error: {message}; ignoring it and using the exact tier");
                });
            }
        }
    }
    false
}

/// Run `f` with the numeric tier pinned on this thread (nested calls see
/// the innermost value). The previous setting is restored even when `f`
/// panics. Used by the equivalence gate and the fast-tier golden tests
/// so test binaries don't race on the process environment.
pub fn with_fast<R>(fast: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FAST_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(FAST_OVERRIDE.with(|cell| cell.replace(Some(fast))));
    f()
}

/// The dispatching thread's tier override, captured at dispatch time so
/// pooled workers resolve [`fast_enabled`] exactly as the caller would —
/// thread-local overrides do not reach persistent pool threads on their
/// own, and a worker silently falling back to the environment would run
/// a different numeric tier than the caller pinned.
fn capture_fast_override() -> Option<bool> {
    FAST_OVERRIDE.with(Cell::get)
}

/// Run `f` under the captured tier override (no-op when the dispatcher
/// had none, leaving the worker's ordinary env resolution in place).
fn with_captured_fast<R>(saved: Option<bool>, f: impl FnOnce() -> R) -> R {
    match saved {
        Some(fast) => with_fast(fast, f),
        None => f(),
    }
}

/// Parse an `ICES_THREADS` value into a worker count.
///
/// Accepts a positive integer (surrounding whitespace ignored). Zero,
/// negative, non-numeric, and empty values are errors — zero in
/// particular is rejected rather than silently bumped to 1, so a typo'd
/// configuration is surfaced instead of quietly changing the schedule.
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    match trimmed.parse::<usize>() {
        Ok(0) => Err(format!(
            "{THREADS_ENV} must be a positive worker count, got 0 \
             (use {THREADS_ENV}=1 for the exact sequential path)"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "{THREADS_ENV} must be a positive integer, got {trimmed:?}"
        )),
    }
}

/// Resolve the worker count: [`with_threads`] override, then
/// `ICES_THREADS`, then available parallelism. Always at least 1.
///
/// An invalid `ICES_THREADS` value (zero, negative, non-numeric) is
/// reported once on stderr with the [`parse_threads`] error and the
/// variable is then ignored in favor of available parallelism — a loud
/// fallback rather than a silent one or a library panic.
pub fn max_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        match parse_threads(&raw) {
            Ok(n) => return n,
            Err(message) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!("error: {message}; ignoring it and using available parallelism");
                });
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` with the worker count pinned to `n` on this thread (nested
/// calls see the innermost value). The previous setting is restored even
/// when `f` panics.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|cell| cell.replace(Some(n.max(1)))));
    f()
}

fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Poison only signals that some partition panicked; the panic itself
    // is re-raised by the pool's dispatch barrier, so recovering here is
    // safe and keeps partial results out of the caller's hands anyway.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Static contiguous partitioning: items `[w·chunk, min(len, (w+1)·chunk))`
/// belong to partition `w`. Pure function of `(len, threads)` — never of
/// scheduling — which is what keeps parallel runs bit-identical.
fn partition_plan(len: usize, threads: usize) -> (usize, usize) {
    let chunk_len = len.div_ceil(threads);
    (chunk_len, len.div_ceil(chunk_len))
}

/// Map `f` over `items` in parallel, returning results **in input order**.
///
/// Work is split into static contiguous partitions — one per resolved
/// worker — executed by the persistent pool; per-partition result
/// vectors are concatenated in partition order, which is input order.
/// `f` receives `(index, &item)`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = max_threads().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let len = items.len();
    let (chunk_len, partitions) = partition_plan(len, threads);
    let parts: Vec<Mutex<Vec<R>>> = (0..partitions).map(|_| Mutex::new(Vec::new())).collect();
    let fast = capture_fast_override();
    pool::broadcast(partitions, &|w| {
        let start = w * chunk_len;
        let end = (start + chunk_len).min(len);
        let out: Vec<R> = with_captured_fast(fast, || {
            items[start..end]
                .iter()
                .enumerate()
                .map(|(offset, item)| f(start + offset, item))
                .collect()
        });
        *lock_recovering(&parts[w]) = out;
    });
    let mut result = Vec::with_capacity(len);
    for part in parts {
        result.append(&mut part.into_inner().unwrap_or_else(PoisonError::into_inner));
    }
    result
}

/// Mutate every item of `items` in parallel, returning `f`'s per-item
/// results **in input order**.
///
/// The slice is split into one contiguous chunk per worker
/// (`chunks_mut`), so each worker owns its items exclusively — this is
/// the two-phase tick loops' update phase, where every node mutates only
/// itself against an immutable snapshot. `f` receives `(index, &mut item)`.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let threads = max_threads().min(items.len().max(1));
    if threads <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let len = items.len();
    let (chunk_len, _) = partition_plan(len, threads);
    // Each partition's exclusive chunk travels through a Mutex'd Option
    // so the (shared, Sync) dispatch closure can hand it to exactly one
    // worker; results come back through the same slot.
    let tasks: Vec<MutTask<'_, T, R>> = items
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(w, chunk)| Mutex::new((w * chunk_len, Some(chunk), Vec::new())))
        .collect();
    let fast = capture_fast_override();
    pool::broadcast(tasks.len(), &|w| {
        let mut slot = lock_recovering(&tasks[w]);
        let (base, chunk, out) = &mut *slot;
        if let Some(chunk) = chunk.take() {
            *out = with_captured_fast(fast, || {
                chunk
                    .iter_mut()
                    .enumerate()
                    .map(|(offset, item)| f(*base + offset, item))
                    .collect()
            });
        }
    });
    tasks
        .into_iter()
        .flat_map(|t| t.into_inner().unwrap_or_else(PoisonError::into_inner).2)
        .collect()
}

/// Select mutable references to the given `indices` of `items`.
///
/// `indices` must be strictly increasing and in bounds; the disjointness
/// this guarantees is what makes handing the references to parallel
/// workers sound, and it is enforced with plain safe `split_at_mut`.
/// Used by the NPS driver to update one hierarchy layer's members while
/// the rest of the population stays immutable.
pub fn select_disjoint_mut<'a, T>(items: &'a mut [T], indices: &[usize]) -> Vec<&'a mut T> {
    let mut out = Vec::with_capacity(indices.len());
    let mut rest = items;
    let mut consumed = 0usize;
    for &index in indices {
        assert!(
            index >= consumed,
            "indices must be strictly increasing (saw {index} after {consumed})"
        );
        let (_, tail) = rest.split_at_mut(index - consumed);
        #[allow(clippy::expect_used)] // same contract as the audit:allow below
        let (picked, tail) = tail
            .split_first_mut()
            // audit:allow(PANIC01): documented caller contract — indices strictly increasing and in bounds; violating it must fail loudly, not limp on
            .expect("index out of bounds in select_disjoint_mut");
        out.push(picked);
        rest = tail;
        consumed = index + 1;
    }
    out
}

/// Run `f(index, &mut items[index])` for every index in `indices` in
/// parallel, returning results **in `indices` order**. `indices` must be
/// strictly increasing.
pub fn par_for_indices<T, R, F>(items: &mut [T], indices: &[usize], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let threads = max_threads().min(indices.len().max(1));
    if threads <= 1 {
        let mut out = Vec::with_capacity(indices.len());
        let picked = select_disjoint_mut(items, indices);
        for (&index, item) in indices.iter().zip(picked) {
            out.push(f(index, item));
        }
        return out;
    }

    let picked = select_disjoint_mut(items, indices);
    let mut paired: Vec<(usize, &mut T)> = indices.iter().copied().zip(picked).collect();
    par_map_mut(&mut paired, |_, (index, item)| f(*index, item))
}

/// Reproduce the pre-pool dispatch cost: spawn `threads` scoped workers
/// that do nothing and join them, exactly as the seed `par_map` did per
/// call. Exists so `bench_tick` can report the pool's per-call dispatch
/// overhead against the spawn path it replaced; not part of the API.
#[doc(hidden)]
pub fn scope_spawn_reference(threads: usize) {
    if threads <= 1 {
        return;
    }
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| std::hint::black_box(0u64));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = with_threads(4, || par_map(&items, |i, &x| i * 1000 + x));
        let expected: Vec<usize> = (0..257).map(|i| i * 1000 + i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_matches_sequential_bitwise() {
        let items: Vec<u64> = (0..100).collect();
        let f = |i: usize, &x: &u64| (x as f64 * 0.1 + i as f64).sin();
        let seq = with_threads(1, || par_map(&items, f));
        let par = with_threads(8, || par_map(&items, f));
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_mut_mutates_every_item_in_order() {
        let mut items: Vec<u64> = vec![0; 300];
        let out = with_threads(3, || {
            par_map_mut(&mut items, |i, x| {
                *x = i as u64 * 2;
                i as u64
            })
        });
        assert_eq!(out, (0..300).collect::<Vec<u64>>());
        assert!(items.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        let mut empty: Vec<u32> = Vec::new();
        assert!(par_map_mut(&mut empty, |_, x| *x).is_empty());
    }

    #[test]
    fn threads_one_takes_sequential_path() {
        // The sequential path must not spawn: observable via thread id.
        let main_thread = std::thread::current().id();
        with_threads(1, || {
            let items = [1, 2, 3];
            let out = par_map(&items, |_, &x| {
                assert_eq!(std::thread::current().id(), main_thread);
                x * 2
            });
            assert_eq!(out, vec![2, 4, 6]);
        });
    }

    #[test]
    fn with_threads_nests_and_restores() {
        with_threads(5, || {
            assert_eq!(max_threads(), 5);
            with_threads(2, || assert_eq!(max_threads(), 2));
            assert_eq!(max_threads(), 5);
        });
    }

    #[test]
    fn panics_propagate_from_workers() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                let items: Vec<usize> = (0..64).collect();
                par_map(&items, |_, &x| {
                    if x == 33 {
                        panic!("boom at 33");
                    }
                    x
                })
            })
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn panics_propagate_from_mut_workers() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                let mut items: Vec<usize> = (0..64).collect();
                par_map_mut(&mut items, |_, x| {
                    if *x == 7 {
                        panic!("boom at 7");
                    }
                    *x
                })
            })
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn select_disjoint_mut_picks_requested_items() {
        let mut items: Vec<u32> = (0..10).collect();
        let picked = select_disjoint_mut(&mut items, &[1, 4, 9]);
        assert_eq!(picked.iter().map(|x| **x).collect::<Vec<_>>(), [1, 4, 9]);
        for p in picked {
            *p += 100;
        }
        assert_eq!(items, [0, 101, 2, 3, 104, 5, 6, 7, 8, 109]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn select_disjoint_mut_rejects_unsorted() {
        let mut items = [0u8; 4];
        let _ = select_disjoint_mut(&mut items, &[2, 1]);
    }

    #[test]
    fn par_for_indices_matches_sequential() {
        let base: Vec<u64> = (0..50).collect();
        let indices: Vec<usize> = (0..50).filter(|i| i % 3 == 0).collect();
        let run = |threads: usize| {
            let mut items = base.clone();
            let out = with_threads(threads, || {
                par_for_indices(&mut items, &indices, |i, x| {
                    *x += 1000;
                    i as u64 + *x
                })
            });
            (items, out)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn parse_threads_accepts_positive_counts() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("16"), Ok(16));
        assert_eq!(parse_threads("  4\n"), Ok(4), "whitespace is tolerated");
    }

    #[test]
    fn parse_threads_rejects_zero_and_garbage_with_clear_messages() {
        let zero = parse_threads("0").expect_err("zero workers is invalid");
        assert!(zero.contains(THREADS_ENV), "names the variable: {zero}");
        assert!(zero.contains("got 0"), "names the value: {zero}");
        for bad in ["", "abc", "-2", "1.5", "4x"] {
            let err = parse_threads(bad).expect_err("invalid value");
            assert!(
                err.contains(THREADS_ENV) && err.contains("positive integer"),
                "unclear message for {bad:?}: {err}"
            );
        }
    }

    #[test]
    fn env_var_is_honoured_without_override() {
        // Only exercised when the variable is absent from the ambient
        // environment; the override-based tests above cover the rest.
        if std::env::var(THREADS_ENV).is_err() {
            assert!(max_threads() >= 1);
        }
    }

    #[test]
    fn parse_fast_accepts_exactly_zero_and_one() {
        assert_eq!(parse_fast("1"), Ok(true));
        assert_eq!(parse_fast("0"), Ok(false));
        assert_eq!(parse_fast(" 1\n"), Ok(true), "whitespace is tolerated");
    }

    #[test]
    fn parse_fast_rejects_everything_else_with_clear_messages() {
        for bad in ["", "true", "yes", "2", "-1", "01", "1.0"] {
            let err = parse_fast(bad).expect_err("invalid value");
            assert!(
                err.contains(FAST_ENV) && err.contains("must be 1"),
                "unclear message for {bad:?}: {err}"
            );
        }
    }

    #[test]
    fn fast_override_propagates_to_pool_workers() {
        // Tier resolution happens inside worker closures in the NPS
        // solver; a with_fast pin on the dispatching thread must be
        // what those closures observe, at any worker count.
        let items: Vec<usize> = (0..64).collect();
        let seen = with_fast(true, || {
            with_threads(4, || par_map(&items, |_, _| fast_enabled()))
        });
        assert!(
            seen.iter().all(|&fast| fast),
            "a worker resolved the exact tier under a fast-tier pin"
        );
        let mut items: Vec<usize> = (0..64).collect();
        let seen = with_fast(true, || {
            with_threads(4, || par_map_mut(&mut items, |_, _| fast_enabled()))
        });
        assert!(
            seen.iter().all(|&fast| fast),
            "a mut worker resolved the exact tier under a fast-tier pin"
        );
        // And the pin must not leak into dispatches that did not ask.
        if std::env::var(FAST_ENV).is_err() {
            let items: Vec<usize> = (0..64).collect();
            let seen = with_threads(4, || par_map(&items, |_, _| fast_enabled()));
            assert!(seen.iter().all(|&fast| !fast), "override leaked");
        }
    }

    #[test]
    fn with_fast_nests_and_restores() {
        with_fast(true, || {
            assert!(fast_enabled());
            with_fast(false, || assert!(!fast_enabled()));
            assert!(fast_enabled());
        });
    }

    #[test]
    fn fast_defaults_to_exact_without_override() {
        // Only exercised when the variable is absent from the ambient
        // environment; the override-based tests above cover the rest.
        if std::env::var(FAST_ENV).is_err() {
            assert!(!fast_enabled(), "exact tier must be the default");
        }
    }

    #[test]
    fn scope_spawn_reference_is_callable() {
        scope_spawn_reference(0);
        scope_spawn_reference(2);
    }
}
