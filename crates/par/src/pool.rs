//! The persistent worker pool behind ices-par's parallel entry points.
//!
//! ## Why a pool
//!
//! The seed implementation spawned a fresh `thread::scope` on every
//! `par_map`/`par_map_mut` call. At tick-engine granularity (hundreds of
//! thousands of calls per run, microseconds of work per call) the spawn
//! and join cost dominated: at harness scale the 2-thread configuration
//! ran *slower* than sequential. The pool spawns each worker exactly
//! once — lazily, on the first dispatch that needs it — and parks
//! workers on a condvar between calls, so a dispatch is a mutex-guarded
//! handoff instead of a clone-and-spawn.
//!
//! ## Handoff protocol
//!
//! A dispatch ("broadcast") publishes one [`Job`] — a type-erased
//! partition closure plus the partition count — under the state mutex,
//! bumps the epoch, and wakes every worker. Worker `w` runs partition
//! `w` iff `w < partitions`; the caller always runs partition 0 itself.
//! The caller then blocks until every *assigned* worker has checked in
//! (`remaining` reaching 0), takes any captured worker panic, clears the
//! job, and only then returns. Epoch tracking makes each worker execute
//! each job at most once, and the `remaining` barrier makes it
//! impossible for a dispatch to complete while any worker could still
//! touch the job.
//!
//! ## Why this stays deterministic
//!
//! The pool itself assigns **static contiguous partitions** — partition
//! `w` is a fixed function of `(items.len(), resolved thread count)`,
//! never of scheduling. There is no work stealing and no shared cursor:
//! two runs at the same `ICES_THREADS` execute exactly the same items in
//! exactly the same per-worker order, and the callers (see `par_map`,
//! `par_map_mut`) reassemble results by partition index, so output order
//! is the input order at *any* thread count. Reusing pooled workers
//! cannot perturb results for the same reason fresh-spawned workers
//! could not: no simulation state lives on a worker thread between
//! calls.
//!
//! ## Safety
//!
//! This module is the workspace's single sanctioned `unsafe` island
//! (see `ices-audit` SAFE01): handing a borrowed closure to a persistent
//! thread requires erasing its lifetime, exactly as `rayon` does. The
//! soundness argument is the completion barrier above — the erased
//! pointer is dereferenced only between job publication and the
//! `remaining == 0` handshake, during which the dispatching call (which
//! owns the borrow) is blocked and cannot return or unwind past it.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError, TryLockError};

/// One published dispatch: the partition closure (lifetime-erased) and
/// how many partitions it spans.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    partitions: usize,
}

// SAFETY: the raw pointer is only ever dereferenced by workers between
// job publication and the completion barrier, while the dispatching
// call — which holds the original borrow — is blocked in `broadcast`.
// The closure itself is `Sync`, so shared calls from several workers
// are fine.
unsafe impl Send for Job {}

/// Mutex-guarded pool state.
struct State {
    /// Bumped once per dispatch; workers use it to run each job once.
    epoch: u64,
    /// The current job, present only while a dispatch is in flight.
    job: Option<Job>,
    /// First panic payload captured from a worker this dispatch.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Worker threads spawned so far (they are never torn down).
    workers: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Assigned workers still running the current job. Kept atomic (not
    /// under the mutex) so the dispatcher can spin briefly before
    /// parking on `done`.
    remaining: AtomicUsize,
    /// Workers park here between jobs.
    work: Condvar,
    /// The dispatcher parks here while workers finish.
    done: Condvar,
}

/// The process-wide pool. Created on first parallel dispatch; workers
/// are added lazily as larger thread counts are requested and persist
/// for the life of the process.
struct Pool {
    shared: &'static Shared,
    /// Serializes dispatches. A concurrent or re-entrant broadcast
    /// (`try_lock` failure) runs its partitions inline instead — the
    /// result is identical, only the scheduling differs.
    dispatch: Mutex<()>,
    /// Whether spinning briefly for completion can help (it cannot on a
    /// single-core host, where spinning only steals the worker's CPU).
    multicore: bool,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // The pool never runs user code while holding the state mutex, so a
    // poisoned lock only means a worker panicked elsewhere; the state
    // itself is still consistent.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            shared: Box::leak(Box::new(Shared {
                state: Mutex::new(State {
                    epoch: 0,
                    job: None,
                    panic: None,
                    workers: 0,
                }),
                remaining: AtomicUsize::new(0),
                work: Condvar::new(),
                done: Condvar::new(),
            })),
            dispatch: Mutex::new(()),
            multicore: std::thread::available_parallelism()
                .map(|n| n.get() > 1)
                .unwrap_or(false),
        })
    }

    /// Grow the pool to at least `want` workers; returns how many exist.
    /// Spawn failure (resource exhaustion) is not fatal — the caller
    /// falls back to running partitions inline.
    fn ensure_workers(&self, want: usize) -> usize {
        let mut st = lock(&self.shared.state);
        while st.workers < want {
            let index = st.workers + 1; // worker ids are 1-based; 0 is the caller
            let shared: &'static Shared = self.shared;
            match std::thread::Builder::new()
                .name(format!("ices-par-{index}"))
                .spawn(move || worker_loop(shared, index))
            {
                Ok(_) => st.workers += 1,
                Err(_) => break,
            }
        }
        st.workers
    }
}

fn worker_loop(shared: &'static Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.epoch != seen {
                    if let Some(job) = st.job {
                        seen = st.epoch;
                        break job;
                    }
                }
                st = wait(&shared.work, st);
            }
        };
        if index >= job.partitions {
            continue; // not assigned this dispatch; park again
        }
        // SAFETY: `job` was read under the state mutex at epoch `seen`,
        // and this worker is assigned (`index < partitions`), so the
        // dispatcher is blocked on `remaining` until our decrement below
        // — the borrow behind the pointer is still live for the whole
        // call.
        let f = unsafe { &*job.f };
        let result = catch_unwind(AssertUnwindSafe(|| f(index)));
        if let Err(payload) = result {
            let mut st = lock(&shared.state);
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        // Check in *after* the last use of `f`. Taking the state lock
        // before notifying pairs with the dispatcher's re-check under
        // the same lock, so the wakeup cannot be lost.
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            drop(lock(&shared.state));
            shared.done.notify_all();
        }
    }
}

/// Erase the closure borrow's lifetime so it can sit in the pool's
/// (`'static`) shared state for the duration of one dispatch.
fn erase<'a>(f: &'a (dyn Fn(usize) + Sync)) -> *const (dyn Fn(usize) + Sync) {
    let ptr: *const (dyn Fn(usize) + Sync) = f;
    // SAFETY: a raw-pointer transmute that only widens the trait
    // object's lifetime bound; layout is identical. Soundness of later
    // dereferences is the completion-barrier argument in the module
    // docs, not this cast.
    unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync + 'a), *const (dyn Fn(usize) + Sync)>(
            ptr,
        )
    }
}

/// Bounded completion spin before parking on the `done` condvar.
const DONE_SPINS: usize = 512;

/// Run `f(0)`, `f(1)`, … `f(partitions - 1)`, each exactly once, the
/// caller executing partition 0 and pooled workers the rest. Returns
/// after every partition has finished; a panic in any partition is
/// re-raised on the caller (after the barrier, so no borrow escapes).
///
/// Partition indices — not scheduling — determine what each invocation
/// does, so concurrent, re-entrant, and degraded (worker-less) dispatch
/// all produce identical results by running partitions inline.
pub(crate) fn broadcast(partitions: usize, f: &(dyn Fn(usize) + Sync)) {
    if partitions <= 1 {
        if partitions == 1 {
            f(0);
        }
        return;
    }
    let pool = Pool::global();
    let _dispatch = match pool.dispatch.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            // Another dispatch is in flight (concurrent caller, or a
            // nested broadcast from inside a partition): run inline.
            for w in 0..partitions {
                f(w);
            }
            return;
        }
    };
    if pool.ensure_workers(partitions - 1) < partitions - 1 {
        for w in 0..partitions {
            f(w);
        }
        return;
    }

    {
        let mut st = lock(&pool.shared.state);
        pool.shared
            .remaining
            .store(partitions - 1, Ordering::Release);
        st.epoch = st.epoch.wrapping_add(1);
        st.job = Some(Job {
            f: erase(f),
            partitions,
        });
    }
    pool.shared.work.notify_all();

    let local = catch_unwind(AssertUnwindSafe(|| f(0)));

    // Completion barrier: nothing below may be reordered before every
    // assigned worker has checked in — including the panic re-raise.
    if pool.multicore {
        for _ in 0..DONE_SPINS {
            if pool.shared.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            std::hint::spin_loop();
        }
    }
    let worker_panic = {
        let mut st = lock(&pool.shared.state);
        while pool.shared.remaining.load(Ordering::Acquire) != 0 {
            st = wait(&pool.shared.done, st);
        }
        st.job = None;
        st.panic.take()
    };

    if let Err(payload) = local {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_every_partition_exactly_once() {
        let hits: Vec<AtomicU64> = (0..5).map(|_| AtomicU64::new(0)).collect();
        for _ in 0..100 {
            broadcast(5, &|w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn broadcast_zero_and_one_partitions() {
        broadcast(0, &|_| panic!("no partitions to run"));
        let ran = AtomicU64::new(0);
        broadcast(1, &|w| {
            assert_eq!(w, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_broadcast_runs_inline() {
        let inner_hits: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
        broadcast(2, &|w| {
            if w == 0 {
                // Re-entrant dispatch: must not deadlock on the
                // dispatch mutex; it degrades to inline execution.
                broadcast(3, &|v| {
                    inner_hits[v].fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        for h in &inner_hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn worker_panic_reaches_dispatcher_after_barrier() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            broadcast(4, &|w| {
                if w == 2 {
                    panic!("partition 2 exploded");
                }
            });
        }));
        assert!(caught.is_err(), "worker panic must propagate");
        // The pool must still be fully usable afterwards.
        let ok = AtomicU64::new(0);
        broadcast(4, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }
}
