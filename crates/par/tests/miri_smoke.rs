//! Miri-compatible smoke path for the worker pool's unsafe island.
//!
//! The pool's lifetime erasure (`pool.rs::erase`) is exactly the kind of
//! raw-pointer dataflow Miri's borrow tracking validates, so tier-2 runs
//! this file under `cargo miri test -p ices-par --test miri_smoke`
//! whenever a Miri toolchain is installed (the step is availability-
//! gated in scripts/tier2.sh — the stock container has none). The same
//! tests run under plain `cargo test` too, where they are a cheap
//! end-to-end exercise of dispatch → erased call → barrier → reuse.
//!
//! Kept deliberately tiny: Miri executes ~100-1000x slower than native,
//! and interpreter-visible nondeterminism (host parallelism probes) is
//! pinned by `with_threads` so the run is reproducible under isolation.

use ices_par::{par_map, par_map_mut, with_threads};
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn pooled_par_map_round_trips_borrowed_closures() {
    with_threads(2, || {
        let items: Vec<u64> = (0..17).collect();
        let offset = 5u64; // borrowed by the erased closure
        for round in 0..3 {
            let out = par_map(&items, |_, &x| x * 2 + offset + round);
            let expect: Vec<u64> = items.iter().map(|&x| x * 2 + offset + round).collect();
            assert_eq!(out, expect, "round {round}");
        }
    });
}

#[test]
fn pooled_par_map_mut_sees_disjoint_borrows() {
    with_threads(2, || {
        let mut items: Vec<u64> = (0..13).collect();
        let before = par_map_mut(&mut items, |_, x| {
            let old = *x;
            *x += 100;
            old
        });
        assert_eq!(before, (0..13).collect::<Vec<u64>>());
        assert_eq!(items, (100..113).collect::<Vec<u64>>());
    });
}

#[test]
fn pooled_panic_unwinds_cleanly_and_pool_survives() {
    with_threads(2, || {
        let items: Vec<u64> = (0..8).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |_, &x| {
                assert!(x != 6, "deliberate smoke panic");
                x
            })
        }));
        assert!(caught.is_err(), "partition panic must propagate");
        // After the unwind the erased borrow is gone; a fresh dispatch
        // must neither deadlock nor touch stale state.
        let out = par_map(&items, |_, &x| x + 1);
        assert_eq!(out, (1..9).collect::<Vec<u64>>());
    });
}
