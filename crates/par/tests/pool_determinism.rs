//! Pool-reuse determinism: the persistent pool must give the same
//! bit-for-bit answers on its thousandth dispatch as a fresh spawn would
//! on its first, at every thread count.

use ices_par::{par_for_indices, par_map, par_map_mut, with_threads};

/// A float workload whose result depends on both index and value, with
/// enough operations that any partitioning or ordering slip would change
/// bits.
fn churn(i: usize, x: f64) -> f64 {
    let mut acc = x;
    for k in 0..16 {
        acc = (acc * 1.000_000_11 + (i as f64) * 0.001 + k as f64).sin() * 10.0;
    }
    acc
}

#[test]
fn repeated_pool_dispatches_match_sequential_bitwise() {
    let items: Vec<f64> = (0..733).map(|i| i as f64 * 0.37).collect();
    let reference = with_threads(1, || par_map(&items, |i, &x| churn(i, x)));
    for threads in [1usize, 2, 8] {
        for round in 0..50 {
            let out = with_threads(threads, || par_map(&items, |i, &x| churn(i, x)));
            let bits_match = out
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                bits_match,
                "par_map diverged from sequential at threads={threads} round={round}"
            );
        }
    }
}

#[test]
fn repeated_pool_dispatches_mutate_identically() {
    let base: Vec<f64> = (0..501).map(|i| (i as f64).cos()).collect();
    let run = |threads: usize| {
        let mut items = base.clone();
        let out = with_threads(threads, || {
            par_map_mut(&mut items, |i, x| {
                *x = churn(i, *x);
                *x * 0.5
            })
        });
        (items, out)
    };
    let (ref_items, ref_out) = run(1);
    for threads in [1usize, 2, 8] {
        for round in 0..20 {
            let (items, out) = run(threads);
            assert!(
                items
                    .iter()
                    .zip(&ref_items)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
                    && out
                        .iter()
                        .zip(&ref_out)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                "par_map_mut diverged at threads={threads} round={round}"
            );
        }
    }
}

#[test]
fn indexed_dispatch_over_reused_pool_is_stable() {
    let base: Vec<f64> = (0..256).map(|i| i as f64 * 0.11).collect();
    let indices: Vec<usize> = (0..256).filter(|i| i % 5 != 2).collect();
    let run = |threads: usize| {
        let mut items = base.clone();
        let out = with_threads(threads, || {
            par_for_indices(&mut items, &indices, |i, x| {
                *x = churn(i, *x);
                *x
            })
        });
        (items, out)
    };
    let reference = run(1);
    for threads in [2usize, 8] {
        for _ in 0..10 {
            assert_eq!(run(threads), reference);
        }
    }
}

#[test]
fn interleaved_thread_counts_share_one_pool_safely() {
    // Alternate partition counts call-to-call: workers assigned in one
    // dispatch must park cleanly when the next dispatch doesn't need
    // them, and wake correctly when it does again.
    let items: Vec<f64> = (0..97).map(|i| i as f64).collect();
    let reference = with_threads(1, || par_map(&items, |i, &x| churn(i, x)));
    for threads in [8usize, 2, 5, 1, 8, 3, 2, 8, 1, 4] {
        let out = with_threads(threads, || par_map(&items, |i, &x| churn(i, x)));
        assert_eq!(out, reference, "diverged at threads={threads}");
    }
}
