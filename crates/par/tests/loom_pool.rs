//! Schedule-explored model of the worker pool's handoff protocol
//! (`crates/par/src/pool.rs`), compiled only under `--cfg loom`
//! (tier-2 runs `RUSTFLAGS="--cfg loom" cargo test -p ices-par --test
//! loom_pool`).
//!
//! The real pool erases a borrowed closure's lifetime and hands the raw
//! pointer to persistent threads; its soundness argument is the
//! completion barrier — the dispatcher cannot return (and the borrow
//! cannot die) while any assigned worker could still touch the job.
//! That argument is about *orderings*, so this file re-implements the
//! protocol verbatim on loom's instrumented primitives and asserts its
//! invariants under many explored schedules:
//!
//! - `state: Mutex<{epoch, job, panic, shutdown}>` — publication under
//!   the lock, epoch bumped per dispatch (pool.rs `State`);
//! - `remaining: AtomicUsize` — assigned-worker count, decremented
//!   AcqRel after the last use of the job, lock-then-notify on the last
//!   decrement so the dispatcher's re-check under the same lock cannot
//!   lose the wakeup (pool.rs `worker_loop` tail);
//! - `work` / `done` condvars — worker parking and dispatcher barrier.
//!
//! The only deliberate departures: workers honor a `shutdown` flag so
//! model threads terminate (the real workers live forever), worker
//! panics are modeled as a recorded payload rather than a real unwind
//! (the real code's `catch_unwind` → stash-under-lock is the same
//! dataflow), and the caller's partition-0 execution is inlined.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

/// Max partitions any modeled round uses (hit-matrix width).
const WIDTH: usize = 4;

/// One published dispatch. The real `Job` carries a lifetime-erased
/// `*const dyn Fn(usize)`; the model carries the data the closure would
/// close over instead, so "dereferencing the job" is indexing `hits`.
#[derive(Clone, Copy)]
struct Job {
    round: usize,
    partitions: usize,
    /// Partition whose run is modeled as panicking, if any.
    poison: Option<usize>,
}

struct State {
    epoch: u64,
    job: Option<Job>,
    panic: Option<&'static str>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    remaining: AtomicUsize,
    work: Condvar,
    done: Condvar,
    /// `hits[round * WIDTH + partition]` — how many times that
    /// partition ran in that round. The exactly-once assertions below
    /// are the model's stand-in for "the erased pointer was used only
    /// while the borrow was live".
    hits: Vec<AtomicUsize>,
}

fn shared(rounds: usize) -> Arc<Shared> {
    Arc::new(Shared {
        state: Mutex::new(State {
            epoch: 0,
            job: None,
            panic: None,
            shutdown: false,
        }),
        remaining: AtomicUsize::new(0),
        work: Condvar::new(),
        done: Condvar::new(),
        hits: (0..rounds * WIDTH).map(|_| AtomicUsize::new(0)).collect(),
    })
}

fn lock(shared: &Shared) -> loom::sync::MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Mirror of pool.rs `worker_loop`, plus the shutdown exit.
fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    if let Some(job) = st.job {
                        seen = st.epoch;
                        break job;
                    }
                }
                st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        if index >= job.partitions {
            continue; // not assigned this dispatch; park again
        }
        // "Dereference the job": the real worker calls through the
        // erased pointer here.
        shared.hits[job.round * WIDTH + index].fetch_add(1, Ordering::SeqCst);
        if job.poison == Some(index) {
            let mut st = lock(shared);
            if st.panic.is_none() {
                st.panic = Some("modeled worker panic");
            }
        }
        // Check in after the last use of the job; lock-then-notify on
        // the final decrement, exactly as in pool.rs.
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            drop(lock(shared));
            shared.done.notify_all();
        }
    }
}

/// Mirror of pool.rs `broadcast` (the `partitions > 1`, workers-exist
/// path). Returns the captured worker panic, which the real code
/// re-raises after the barrier.
fn broadcast(
    shared: &Shared,
    round: usize,
    partitions: usize,
    poison: Option<usize>,
) -> Option<&'static str> {
    {
        let mut st = lock(shared);
        shared.remaining.store(partitions - 1, Ordering::Release);
        st.epoch = st.epoch.wrapping_add(1);
        st.job = Some(Job {
            round,
            partitions,
            poison,
        });
    }
    shared.work.notify_all();

    // The caller runs partition 0 itself.
    shared.hits[round * WIDTH].fetch_add(1, Ordering::SeqCst);

    // Completion barrier: re-check `remaining` under the state lock so
    // the worker's lock-then-notify cannot slip between check and wait.
    let mut st = lock(shared);
    while shared.remaining.load(Ordering::Acquire) != 0 {
        st = shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    st.job = None;
    st.panic.take()
}

fn shutdown(shared: &Shared) {
    let mut st = lock(shared);
    st.shutdown = true;
    drop(st);
    shared.work.notify_all();
}

fn assert_round(shared: &Shared, round: usize, partitions: usize) {
    for w in 0..WIDTH {
        let hits = shared.hits[round * WIDTH + w].load(Ordering::SeqCst);
        let expect = usize::from(w < partitions);
        assert_eq!(
            hits, expect,
            "round {round} partition {w}: ran {hits}x, expected {expect}x"
        );
    }
}

#[test]
fn model_broadcast_runs_every_assigned_partition_before_returning() {
    loom::model(|| {
        let sh = shared(1);
        let workers: Vec<_> = (1..WIDTH)
            .map(|index| {
                let sh = sh.clone();
                thread::spawn(move || worker_loop(&sh, index))
            })
            .collect();

        let panic = broadcast(&sh, 0, WIDTH, None);
        assert!(panic.is_none());
        // The moment broadcast returns, the barrier guarantees every
        // assigned partition has fully run — this is the line that
        // justifies the lifetime erasure in pool.rs.
        assert_round(&sh, 0, WIDTH);

        shutdown(&sh);
        for w in workers {
            w.join().expect("worker thread");
        }
    });
}

#[test]
fn model_epoch_keeps_jobs_exactly_once_across_reused_rounds() {
    loom::model(|| {
        let sh = shared(3);
        let workers: Vec<_> = (1..WIDTH)
            .map(|index| {
                let sh = sh.clone();
                thread::spawn(move || worker_loop(&sh, index))
            })
            .collect();

        // Three dispatches reuse the same parked workers; the middle
        // one assigns fewer partitions than workers exist, so an
        // unassigned worker must skip it yet still run the next round.
        assert!(broadcast(&sh, 0, WIDTH, None).is_none());
        assert!(broadcast(&sh, 1, 2, None).is_none());
        assert!(broadcast(&sh, 2, WIDTH, None).is_none());

        assert_round(&sh, 0, WIDTH);
        assert_round(&sh, 1, 2);
        assert_round(&sh, 2, WIDTH);

        shutdown(&sh);
        for w in workers {
            w.join().expect("worker thread");
        }
    });
}

#[test]
fn model_worker_panic_is_delivered_after_the_barrier() {
    loom::model(|| {
        let sh = shared(2);
        let workers: Vec<_> = (1..WIDTH)
            .map(|index| {
                let sh = sh.clone();
                thread::spawn(move || worker_loop(&sh, index))
            })
            .collect();

        // Worker 2's partition "panics"; the dispatcher must still see
        // every partition (including 2's, whose hit lands before its
        // check-in) complete before the payload is handed back.
        let panic = broadcast(&sh, 0, WIDTH, Some(2));
        assert_eq!(panic, Some("modeled worker panic"));
        assert_round(&sh, 0, WIDTH);

        // The panic slot was taken, so the pool is reusable: a clean
        // follow-up round reports no panic.
        assert!(broadcast(&sh, 1, WIDTH, None).is_none());
        assert_round(&sh, 1, WIDTH);

        shutdown(&sh);
        for w in workers {
            w.join().expect("worker thread");
        }
    });
}
